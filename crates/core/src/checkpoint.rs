//! Versioned whole-run checkpoints: everything a round depends on, in one
//! magic-tagged, CRC-checked binary blob.
//!
//! The format follows the `FEDMIGR1` conventions of
//! `fedmigr_nn::checkpoint` (little-endian, length-prefixed, CRC-32
//! trailer) but carries a *run*, not a model, under its own magic:
//!
//! ```text
//! [8]  magic  b"FEDMIGRR"
//! [4]  u32    format version (RUN_STATE_VERSION)
//! [..] stamp  identifying run configuration (scheme/seed/epochs/clients/
//!             num_params/codec/transport/agg_interval) — validated against
//!             the resuming run's configuration before any state is decoded
//! [..] state  the RunState payload
//! [4]  u32    CRC-32 (IEEE) over everything above
//! ```
//!
//! Determinism contract: restoring a [`RunState`] and replaying rounds
//! `epoch+1..` must be *byte-identical* to never having stopped. That is
//! only possible because every source of run randomness is explicit state
//! (the shared `StdRng`, each client's private RNG, the DDPG agent's RNG
//! and OU process, the compressor's rounding counter) and every hash-based
//! process (faults, attacks) is a pure function of `(seed, epoch)`. The
//! chaos harness in `tests/chaos_resume.rs` enforces the contract.

use std::io;

use fedmigr_compress::{CompressionStats, CompressorState};
use fedmigr_drl::{AgentState, OuState, ReplayState, Transition, UpdateStats};
use fedmigr_fleet::DormantState;
use fedmigr_net::{MeterState, TrafficBreakdown, TransportAccumState, TransportStats};
use fedmigr_nn::checkpoint::crc32;

use crate::client::ClientState;
use crate::metrics::{EpochRecord, FaultStats, PhaseBreakdown, RecoveryStats, RobustStats};
use crate::migration::QuarantineState;

/// Magic tag opening every run checkpoint (distinct from the model
/// checkpoint's `FEDMIGR1`).
pub const RUN_STATE_MAGIC: &[u8; 8] = b"FEDMIGRR";

/// Current run-checkpoint format version. Version 2 added the stamp's
/// `mode` field (dense vs fleet) and the fleet payload layout.
pub const RUN_STATE_VERSION: u32 = 2;

/// Identifying configuration a checkpoint is only valid for. Stamped into
/// every checkpoint and validated field by field on load: resuming a run
/// under a different scheme, seed, architecture, codec or transport is an
/// error, not a silent divergence.
#[derive(Clone, Debug, PartialEq)]
pub struct RunStamp {
    /// Scheme name.
    pub scheme: String,
    /// Run seed.
    pub seed: u64,
    /// Configured epoch budget.
    pub epochs: u64,
    /// Number of clients `K`.
    pub clients: u64,
    /// Scalar parameter count of the model architecture.
    pub num_params: u64,
    /// Wire-codec name.
    pub codec: String,
    /// Transport name.
    pub transport: String,
    /// Aggregation interval.
    pub agg_interval: u64,
    /// Runner mode: `"dense"` (every client materialized, [`RunState`]
    /// payload) or `"fleet"` (stub pool, [`FleetRunState`] payload). Checked
    /// *before* the payload is decoded, so loading a fleet snapshot into a
    /// dense run (or vice versa) fails with a clear mismatch error instead
    /// of a garbled-state panic later.
    pub mode: String,
}

/// A late upload buffered across a checkpoint (the flow transport's
/// staleness buffer).
#[derive(Clone, Debug, PartialEq)]
pub struct LateUploadState {
    /// The uploading client.
    pub client: usize,
    /// The decoded payload the wire delivered.
    pub params: Vec<f32>,
    /// Aggregation counter when the upload was buffered.
    pub seq: usize,
}

/// The DDPG agent plus the runner's reward-pending decision queue.
#[derive(Clone, Debug, PartialEq)]
pub struct AgentSnapshot {
    /// Full agent state (networks, replay, RNG, OU noise).
    pub agent: AgentState,
    /// Decisions awaiting their reward: `(state, destination, client)`.
    pub pending: Vec<(Vec<f32>, usize, usize)>,
}

/// Everything a round depends on, captured after a completed epoch.
#[derive(Clone, Debug, PartialEq)]
pub struct RunState {
    /// Last completed epoch; resume continues at `epoch + 1`.
    pub epoch: usize,
    /// Server-held global model parameters.
    pub global: Vec<f32>,
    /// Per-client mutable state (model, RNG, shuffled indices, counters).
    pub clients: Vec<ClientState>,
    /// The shared runner RNG's raw stream position.
    pub rng: [u64; 4],
    /// Resource-meter consumption.
    pub meter: MeterState,
    /// Virtual clock time in seconds.
    pub clock_now: f64,
    /// Per-phase attribution of the virtual clock.
    pub phase: PhaseBreakdown,
    /// Fault accounting so far.
    pub fault_stats: FaultStats,
    /// Per-client downtime EMAs.
    pub flaky: Vec<f64>,
    /// Flow-transport accumulator state.
    pub taccum: TransportAccumState,
    /// Buffered late uploads awaiting a future aggregation.
    pub late_buf: Vec<LateUploadState>,
    /// Completed-aggregation counter.
    pub agg_seq: usize,
    /// Migration-quarantine state (`None` without an active adversary).
    pub quarantine: Option<QuarantineState>,
    /// Byzantine-defense accounting so far.
    pub robust_total: RobustStats,
    /// Per-client model-mixture estimates.
    pub mix: Vec<Vec<f64>>,
    /// Diagnostic training-history mixture twin.
    pub train_mix: Vec<Vec<f64>>,
    /// Wire-compressor state (error-feedback residuals, rounding counter).
    pub compressor: CompressorState,
    /// DDPG agent state (`None` for non-DRL schemes).
    pub agent: Option<AgentSnapshot>,
    /// Per-epoch records produced so far.
    pub records: Vec<EpochRecord>,
    /// `K x K` migration-count matrix.
    pub link_migrations: Vec<u32>,
    /// Intra-LAN migrations executed.
    pub migrations_local: usize,
    /// Cross-LAN migrations executed.
    pub migrations_global: usize,
    /// Previous round's mean training loss.
    pub prev_loss: Option<f32>,
    /// Previous round's (compute, bandwidth) budget usage fractions.
    pub last_epoch_usage: (f64, f64),
    /// Most recent DRL step reward.
    pub last_step_reward: f64,
    /// Clients the watchdog excluded after implicating them in a
    /// divergence (empty in normal runs; excluded clients sit rounds out).
    pub excluded: Vec<bool>,
    /// Recovery accounting carried across resumes.
    pub recovery: RecoveryStats,
}

impl RunState {
    /// Encodes the state under `stamp` into the checkpoint wire format.
    pub fn to_bytes(&self, stamp: &RunStamp) -> Vec<u8> {
        let mut e = Enc { buf: Vec::with_capacity(4096) };
        e.buf.extend_from_slice(RUN_STATE_MAGIC);
        e.u32(RUN_STATE_VERSION);
        put_stamp(&mut e, stamp);
        put_state(&mut e, self);
        let crc = crc32(&e.buf);
        e.u32(crc);
        e.buf
    }

    /// Decodes a checkpoint, validating the magic, version, CRC and every
    /// stamp field against `expect` before touching the payload. Any
    /// corruption or mismatch yields [`io::ErrorKind::InvalidData`].
    pub fn from_bytes(bytes: &[u8], expect: &RunStamp) -> io::Result<RunState> {
        let mut d = open_container(bytes)?;
        let stamp = take_stamp(&mut d)?;
        check_stamp(&stamp, expect)?;
        let state = take_state(&mut d)?;
        if d.pos != d.b.len() {
            return Err(bad("trailing bytes after run checkpoint payload"));
        }
        Ok(state)
    }

    /// Writes the encoded checkpoint to `path` atomically (write to a
    /// sibling temp file, then rename): a crash mid-write never leaves a
    /// torn checkpoint where a good one stood.
    pub fn save(&self, path: &std::path::Path, stamp: &RunStamp) -> io::Result<u64> {
        let bytes = self.to_bytes(stamp);
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, &bytes)?;
        std::fs::rename(&tmp, path)?;
        Ok(bytes.len() as u64)
    }

    /// Reads and decodes a checkpoint from `path`.
    pub fn load(path: &std::path::Path, expect: &RunStamp) -> io::Result<RunState> {
        let bytes = std::fs::read(path)?;
        Self::from_bytes(&bytes, expect)
    }
}

/// Everything a *fleet* round depends on, captured after a completed round.
/// Deliberately small: the fleet's per-client state lives in the dormant
/// stubs (one [`DormantState`] each — RNG stream, migration counter,
/// participation count), so a K = 100,000 checkpoint is a few megabytes,
/// not a dense `K × num_params` dump. Shares the dense checkpoint's
/// magic/version/stamp/CRC container under `mode = "fleet"`.
#[derive(Clone, Debug, PartialEq)]
pub struct FleetRunState {
    /// Last completed round; resume continues at `epoch + 1`.
    pub epoch: usize,
    /// Server-held global model parameters.
    pub global: Vec<f32>,
    /// The shared sampling RNG's raw stream position.
    pub rng: [u64; 4],
    /// Per-client dormant state, in id order (length `K`).
    pub dormant: Vec<DormantState>,
    /// Pooled DDPG agent state (`None` for non-DRL fleet schemes).
    pub agent: Option<AgentSnapshot>,
    /// Resource-meter consumption.
    pub meter: MeterState,
    /// Virtual clock time in seconds.
    pub clock_now: f64,
    /// Per-phase attribution of the virtual clock.
    pub phase: PhaseBreakdown,
    /// Per-round records produced so far.
    pub records: Vec<EpochRecord>,
    /// Intra-LAN migrations executed.
    pub migrations_local: usize,
    /// Cross-LAN migrations executed.
    pub migrations_global: usize,
    /// Previous round's mean training loss.
    pub prev_loss: Option<f32>,
    /// Previous round's (compute, bandwidth) budget usage fractions.
    pub last_epoch_usage: (f64, f64),
    /// Most recent DRL step reward.
    pub last_step_reward: f64,
}

impl FleetRunState {
    /// Encodes the state under `stamp` (which must carry `mode = "fleet"`)
    /// into the checkpoint wire format.
    pub fn to_bytes(&self, stamp: &RunStamp) -> Vec<u8> {
        let mut e = Enc { buf: Vec::with_capacity(4096) };
        e.buf.extend_from_slice(RUN_STATE_MAGIC);
        e.u32(RUN_STATE_VERSION);
        put_stamp(&mut e, stamp);
        put_fleet_state(&mut e, self);
        let crc = crc32(&e.buf);
        e.u32(crc);
        e.buf
    }

    /// Decodes a fleet checkpoint, validating magic, version, CRC and the
    /// stamp (mode first) against `expect` before touching the payload.
    pub fn from_bytes(bytes: &[u8], expect: &RunStamp) -> io::Result<FleetRunState> {
        let mut d = open_container(bytes)?;
        let stamp = take_stamp(&mut d)?;
        check_stamp(&stamp, expect)?;
        let state = take_fleet_state(&mut d)?;
        if d.pos != d.b.len() {
            return Err(bad("trailing bytes after run checkpoint payload"));
        }
        Ok(state)
    }

    /// Writes the encoded checkpoint to `path` atomically.
    pub fn save(&self, path: &std::path::Path, stamp: &RunStamp) -> io::Result<u64> {
        let bytes = self.to_bytes(stamp);
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, &bytes)?;
        std::fs::rename(&tmp, path)?;
        Ok(bytes.len() as u64)
    }

    /// Reads and decodes a fleet checkpoint from `path`.
    pub fn load(path: &std::path::Path, expect: &RunStamp) -> io::Result<FleetRunState> {
        let bytes = std::fs::read(path)?;
        Self::from_bytes(&bytes, expect)
    }
}

/// Validates magic, version and CRC, returning a decoder positioned at the
/// stamp. Shared by the dense and fleet payloads.
fn open_container(bytes: &[u8]) -> io::Result<Dec<'_>> {
    if bytes.len() < RUN_STATE_MAGIC.len() + 8 {
        return Err(bad("run checkpoint too short"));
    }
    if &bytes[..8] != RUN_STATE_MAGIC {
        return Err(bad("not a fedmigr run checkpoint (bad magic)"));
    }
    let body_len = bytes.len() - 4;
    let stored = u32::from_le_bytes(bytes[body_len..].try_into().unwrap());
    if crc32(&bytes[..body_len]) != stored {
        return Err(bad("run checkpoint checksum mismatch"));
    }
    let mut d = Dec { b: &bytes[8..body_len], pos: 0 };
    let version = d.u32()?;
    if version != RUN_STATE_VERSION {
        return Err(bad(&format!(
            "unsupported run checkpoint version {version} (expected {RUN_STATE_VERSION})"
        )));
    }
    Ok(d)
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

// ---------------------------------------------------------------------------
// Encoder / decoder primitives (little-endian, length-prefixed).

struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn us(&mut self, v: usize) {
        self.u64(v as u64);
    }
    fn f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }
    fn str(&mut self, s: &str) {
        self.us(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }
    fn f32s(&mut self, xs: &[f32]) {
        self.us(xs.len());
        for &x in xs {
            self.f32(x);
        }
    }
    fn f64s(&mut self, xs: &[f64]) {
        self.us(xs.len());
        for &x in xs {
            self.f64(x);
        }
    }
    fn u64s(&mut self, xs: &[u64]) {
        self.us(xs.len());
        for &x in xs {
            self.u64(x);
        }
    }
    fn rng(&mut self, s: &[u64; 4]) {
        for &w in s {
            self.u64(w);
        }
    }
}

struct Dec<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        if self.b.len() - self.pos < n {
            return Err(bad("run checkpoint truncated"));
        }
        let out = &self.b[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }
    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn us(&mut self) -> io::Result<usize> {
        usize::try_from(self.u64()?).map_err(|_| bad("count overflows usize"))
    }
    /// A length prefix for elements of `elem` bytes each; rejected when the
    /// declared payload exceeds the remaining buffer (a corrupt length must
    /// not trigger a huge allocation).
    fn len(&mut self, elem: usize) -> io::Result<usize> {
        let n = self.us()?;
        if n.saturating_mul(elem.max(1)) > self.b.len() - self.pos {
            return Err(bad("length prefix exceeds checkpoint size"));
        }
        Ok(n)
    }
    fn f32(&mut self) -> io::Result<f32> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> io::Result<f64> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn bool(&mut self) -> io::Result<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(bad("invalid bool byte")),
        }
    }
    fn str(&mut self) -> io::Result<String> {
        let n = self.len(1)?;
        String::from_utf8(self.take(n)?.to_vec()).map_err(|_| bad("invalid utf-8 string"))
    }
    fn f32s(&mut self) -> io::Result<Vec<f32>> {
        let n = self.len(4)?;
        (0..n).map(|_| self.f32()).collect()
    }
    fn f64s(&mut self) -> io::Result<Vec<f64>> {
        let n = self.len(8)?;
        (0..n).map(|_| self.f64()).collect()
    }
    fn u64s(&mut self) -> io::Result<Vec<u64>> {
        let n = self.len(8)?;
        (0..n).map(|_| self.u64()).collect()
    }
    fn rng(&mut self) -> io::Result<[u64; 4]> {
        Ok([self.u64()?, self.u64()?, self.u64()?, self.u64()?])
    }
}

// ---------------------------------------------------------------------------
// Stamp.

fn put_stamp(e: &mut Enc, s: &RunStamp) {
    e.str(&s.scheme);
    e.u64(s.seed);
    e.u64(s.epochs);
    e.u64(s.clients);
    e.u64(s.num_params);
    e.str(&s.codec);
    e.str(&s.transport);
    e.u64(s.agg_interval);
    e.str(&s.mode);
}

fn take_stamp(d: &mut Dec) -> io::Result<RunStamp> {
    Ok(RunStamp {
        scheme: d.str()?,
        seed: d.u64()?,
        epochs: d.u64()?,
        clients: d.u64()?,
        num_params: d.u64()?,
        codec: d.str()?,
        transport: d.str()?,
        agg_interval: d.u64()?,
        mode: d.str()?,
    })
}

fn check_stamp(found: &RunStamp, expect: &RunStamp) -> io::Result<()> {
    macro_rules! field {
        ($name:ident) => {
            if found.$name != expect.$name {
                return Err(bad(&format!(
                    "run checkpoint {} mismatch: checkpoint has {:?}, run configured {:?}",
                    stringify!($name),
                    found.$name,
                    expect.$name
                )));
            }
        };
    }
    // Mode first: a fleet snapshot offered to a dense run (or vice versa)
    // should always fail with the mode message, whatever else differs.
    field!(mode);
    field!(scheme);
    field!(seed);
    field!(epochs);
    field!(clients);
    field!(num_params);
    field!(codec);
    field!(transport);
    field!(agg_interval);
    Ok(())
}

// ---------------------------------------------------------------------------
// Payload.

fn put_state(e: &mut Enc, s: &RunState) {
    e.us(s.epoch);
    e.f32s(&s.global);
    e.us(s.clients.len());
    for c in &s.clients {
        e.f32s(&c.params);
        e.rng(&c.rng);
        e.us(c.indices.len());
        for &i in &c.indices {
            e.us(i);
        }
        e.us(c.migrations_received);
    }
    e.rng(&s.rng);
    put_meter(e, &s.meter);
    e.f64(s.clock_now);
    put_phase(e, &s.phase);
    put_fault(e, &s.fault_stats);
    e.f64s(&s.flaky);
    put_taccum(e, &s.taccum);
    e.us(s.late_buf.len());
    for lu in &s.late_buf {
        e.us(lu.client);
        e.f32s(&lu.params);
        e.us(lu.seq);
    }
    e.us(s.agg_seq);
    match &s.quarantine {
        None => e.bool(false),
        Some(q) => {
            e.bool(true);
            e.f64s(&q.norms);
            e.f64s(&q.suspicion);
            e.us(q.rejected);
        }
    }
    put_robust(e, &s.robust_total);
    put_mat(e, &s.mix);
    put_mat(e, &s.train_mix);
    put_compressor(e, &s.compressor);
    match &s.agent {
        None => e.bool(false),
        Some(a) => {
            e.bool(true);
            put_agent(e, &a.agent);
            e.us(a.pending.len());
            for (state, dest, client) in &a.pending {
                e.f32s(state);
                e.us(*dest);
                e.us(*client);
            }
        }
    }
    e.us(s.records.len());
    for r in &s.records {
        put_record(e, r);
    }
    e.us(s.link_migrations.len());
    for &m in &s.link_migrations {
        e.u32(m);
    }
    e.us(s.migrations_local);
    e.us(s.migrations_global);
    match s.prev_loss {
        None => e.bool(false),
        Some(l) => {
            e.bool(true);
            e.f32(l);
        }
    }
    e.f64(s.last_epoch_usage.0);
    e.f64(s.last_epoch_usage.1);
    e.f64(s.last_step_reward);
    e.us(s.excluded.len());
    for &x in &s.excluded {
        e.bool(x);
    }
    put_recovery(e, &s.recovery);
}

fn take_state(d: &mut Dec) -> io::Result<RunState> {
    let epoch = d.us()?;
    let global = d.f32s()?;
    let n_clients = d.len(1)?;
    let mut clients = Vec::with_capacity(n_clients);
    for _ in 0..n_clients {
        let params = d.f32s()?;
        let rng = d.rng()?;
        let n_idx = d.len(8)?;
        let indices = (0..n_idx).map(|_| d.us()).collect::<io::Result<Vec<usize>>>()?;
        let migrations_received = d.us()?;
        clients.push(ClientState { params, rng, indices, migrations_received });
    }
    let rng = d.rng()?;
    let meter = take_meter(d)?;
    let clock_now = d.f64()?;
    let phase = take_phase(d)?;
    let fault_stats = take_fault(d)?;
    let flaky = d.f64s()?;
    let taccum = take_taccum(d)?;
    let n_late = d.len(1)?;
    let mut late_buf = Vec::with_capacity(n_late);
    for _ in 0..n_late {
        late_buf.push(LateUploadState { client: d.us()?, params: d.f32s()?, seq: d.us()? });
    }
    let agg_seq = d.us()?;
    let quarantine = if d.bool()? {
        Some(QuarantineState { norms: d.f64s()?, suspicion: d.f64s()?, rejected: d.us()? })
    } else {
        None
    };
    let robust_total = take_robust(d)?;
    let mix = take_mat(d)?;
    let train_mix = take_mat(d)?;
    let compressor = take_compressor(d)?;
    let agent = if d.bool()? {
        let agent = take_agent(d)?;
        let n_pending = d.len(1)?;
        let mut pending = Vec::with_capacity(n_pending);
        for _ in 0..n_pending {
            pending.push((d.f32s()?, d.us()?, d.us()?));
        }
        Some(AgentSnapshot { agent, pending })
    } else {
        None
    };
    let n_records = d.len(1)?;
    let mut records = Vec::with_capacity(n_records);
    for _ in 0..n_records {
        records.push(take_record(d)?);
    }
    let n_links = d.len(4)?;
    let link_migrations = (0..n_links).map(|_| d.u32()).collect::<io::Result<Vec<u32>>>()?;
    let migrations_local = d.us()?;
    let migrations_global = d.us()?;
    let prev_loss = if d.bool()? { Some(d.f32()?) } else { None };
    let last_epoch_usage = (d.f64()?, d.f64()?);
    let last_step_reward = d.f64()?;
    let n_excl = d.len(1)?;
    let excluded = (0..n_excl).map(|_| d.bool()).collect::<io::Result<Vec<bool>>>()?;
    let recovery = take_recovery(d)?;
    Ok(RunState {
        epoch,
        global,
        clients,
        rng,
        meter,
        clock_now,
        phase,
        fault_stats,
        flaky,
        taccum,
        late_buf,
        agg_seq,
        quarantine,
        robust_total,
        mix,
        train_mix,
        compressor,
        agent,
        records,
        link_migrations,
        migrations_local,
        migrations_global,
        prev_loss,
        last_epoch_usage,
        last_step_reward,
        excluded,
        recovery,
    })
}

fn put_fleet_state(e: &mut Enc, s: &FleetRunState) {
    e.us(s.epoch);
    e.f32s(&s.global);
    e.rng(&s.rng);
    e.us(s.dormant.len());
    for d in &s.dormant {
        match &d.rng {
            None => e.bool(false),
            Some(r) => {
                e.bool(true);
                e.rng(r);
            }
        }
        e.u64(d.migrations_received);
        e.u64(d.participations);
    }
    match &s.agent {
        None => e.bool(false),
        Some(a) => {
            e.bool(true);
            put_agent(e, &a.agent);
            e.us(a.pending.len());
            for (state, dest, client) in &a.pending {
                e.f32s(state);
                e.us(*dest);
                e.us(*client);
            }
        }
    }
    put_meter(e, &s.meter);
    e.f64(s.clock_now);
    put_phase(e, &s.phase);
    e.us(s.records.len());
    for r in &s.records {
        put_record(e, r);
    }
    e.us(s.migrations_local);
    e.us(s.migrations_global);
    match s.prev_loss {
        None => e.bool(false),
        Some(l) => {
            e.bool(true);
            e.f32(l);
        }
    }
    e.f64(s.last_epoch_usage.0);
    e.f64(s.last_epoch_usage.1);
    e.f64(s.last_step_reward);
}

fn take_fleet_state(d: &mut Dec) -> io::Result<FleetRunState> {
    let epoch = d.us()?;
    let global = d.f32s()?;
    let rng = d.rng()?;
    let n_dormant = d.len(1)?;
    let mut dormant = Vec::with_capacity(n_dormant);
    for _ in 0..n_dormant {
        let rng = if d.bool()? { Some(d.rng()?) } else { None };
        dormant.push(DormantState { rng, migrations_received: d.u64()?, participations: d.u64()? });
    }
    let agent = if d.bool()? {
        let agent = take_agent(d)?;
        let n_pending = d.len(1)?;
        let mut pending = Vec::with_capacity(n_pending);
        for _ in 0..n_pending {
            pending.push((d.f32s()?, d.us()?, d.us()?));
        }
        Some(AgentSnapshot { agent, pending })
    } else {
        None
    };
    let meter = take_meter(d)?;
    let clock_now = d.f64()?;
    let phase = take_phase(d)?;
    let n_records = d.len(1)?;
    let mut records = Vec::with_capacity(n_records);
    for _ in 0..n_records {
        records.push(take_record(d)?);
    }
    Ok(FleetRunState {
        epoch,
        global,
        rng,
        dormant,
        agent,
        meter,
        clock_now,
        phase,
        records,
        migrations_local: d.us()?,
        migrations_global: d.us()?,
        prev_loss: if d.bool()? { Some(d.f32()?) } else { None },
        last_epoch_usage: (d.f64()?, d.f64()?),
        last_step_reward: d.f64()?,
    })
}

fn put_mat(e: &mut Enc, m: &[Vec<f64>]) {
    e.us(m.len());
    for row in m {
        e.f64s(row);
    }
}

fn take_mat(d: &mut Dec) -> io::Result<Vec<Vec<f64>>> {
    let n = d.len(8)?;
    (0..n).map(|_| d.f64s()).collect()
}

fn put_meter(e: &mut Enc, m: &MeterState) {
    put_traffic(e, &m.traffic);
    e.u64(m.overhead);
    e.f64(m.transfer_seconds);
    e.f64(m.compute_cost);
}

fn take_meter(d: &mut Dec) -> io::Result<MeterState> {
    Ok(MeterState {
        traffic: take_traffic(d)?,
        overhead: d.u64()?,
        transfer_seconds: d.f64()?,
        compute_cost: d.f64()?,
    })
}

fn put_traffic(e: &mut Enc, t: &TrafficBreakdown) {
    e.u64(t.c2s);
    e.u64(t.c2c_local);
    e.u64(t.c2c_global);
}

fn take_traffic(d: &mut Dec) -> io::Result<TrafficBreakdown> {
    Ok(TrafficBreakdown { c2s: d.u64()?, c2c_local: d.u64()?, c2c_global: d.u64()? })
}

fn put_phase(e: &mut Enc, p: &PhaseBreakdown) {
    e.f64(p.train_s);
    e.f64(p.c2s_s);
    e.f64(p.migration_s);
    e.f64(p.backoff_s);
}

fn take_phase(d: &mut Dec) -> io::Result<PhaseBreakdown> {
    Ok(PhaseBreakdown {
        train_s: d.f64()?,
        c2s_s: d.f64()?,
        migration_s: d.f64()?,
        backoff_s: d.f64()?,
    })
}

fn put_fault(e: &mut Enc, f: &FaultStats) {
    e.us(f.client_drops);
    e.us(f.stale_client_epochs);
    e.us(f.transfer_retries);
    e.us(f.rerouted_migrations);
    e.us(f.cancelled_migrations);
    e.u64(f.wasted_bytes);
    e.us(f.client_panics);
}

fn take_fault(d: &mut Dec) -> io::Result<FaultStats> {
    Ok(FaultStats {
        client_drops: d.us()?,
        stale_client_epochs: d.us()?,
        transfer_retries: d.us()?,
        rerouted_migrations: d.us()?,
        cancelled_migrations: d.us()?,
        wasted_bytes: d.u64()?,
        client_panics: d.us()?,
    })
}

fn put_robust(e: &mut Enc, r: &RobustStats) {
    e.us(r.rejected_migrations);
    e.us(r.trimmed_clients);
    e.us(r.clipped_norms);
    e.us(r.nan_uploads);
    e.u64(r.nan_batches);
}

fn take_robust(d: &mut Dec) -> io::Result<RobustStats> {
    Ok(RobustStats {
        rejected_migrations: d.us()?,
        trimmed_clients: d.us()?,
        clipped_norms: d.us()?,
        nan_uploads: d.us()?,
        nan_batches: d.u64()?,
    })
}

fn put_recovery(e: &mut Enc, r: &RecoveryStats) {
    e.us(r.checkpoints_written);
    e.u64(r.checkpoint_bytes);
    e.us(r.checkpoints_loaded);
    e.us(r.rollbacks);
    e.us(r.rounds_replayed);
}

fn take_recovery(d: &mut Dec) -> io::Result<RecoveryStats> {
    Ok(RecoveryStats {
        checkpoints_written: d.us()?,
        checkpoint_bytes: d.u64()?,
        checkpoints_loaded: d.us()?,
        rollbacks: d.us()?,
        rounds_replayed: d.us()?,
    })
}

fn put_taccum(e: &mut Enc, t: &TransportAccumState) {
    put_transport_stats(e, &t.stats);
    e.f64s(&t.queue_delays);
    e.f64s(&t.utils);
}

fn take_taccum(d: &mut Dec) -> io::Result<TransportAccumState> {
    Ok(TransportAccumState {
        stats: take_transport_stats(d)?,
        queue_delays: d.f64s()?,
        utils: d.f64s()?,
    })
}

fn put_transport_stats(e: &mut Enc, t: &TransportStats) {
    e.u64(t.flows);
    e.u64(t.failed_flows);
    e.u64(t.retransmits);
    e.u64(t.timeouts);
    e.u64(t.retransmit_bytes);
    e.f64(t.queue_delay_p50);
    e.f64(t.queue_delay_p99);
    e.f64(t.mean_link_utilization);
    e.u64(t.late_uploads);
    e.u64(t.stale_updates_folded);
    e.u64(t.stale_updates_dropped);
}

fn take_transport_stats(d: &mut Dec) -> io::Result<TransportStats> {
    Ok(TransportStats {
        flows: d.u64()?,
        failed_flows: d.u64()?,
        retransmits: d.u64()?,
        timeouts: d.u64()?,
        retransmit_bytes: d.u64()?,
        queue_delay_p50: d.f64()?,
        queue_delay_p99: d.f64()?,
        mean_link_utilization: d.f64()?,
        late_uploads: d.u64()?,
        stale_updates_folded: d.u64()?,
        stale_updates_dropped: d.u64()?,
    })
}

fn put_compressor(e: &mut Enc, c: &CompressorState) {
    put_opt_lanes(e, &c.feedback);
    put_opt_lanes(e, &c.down_feedback);
    e.u64(c.seq);
    put_compression_stats(e, &c.stats);
}

fn take_compressor(d: &mut Dec) -> io::Result<CompressorState> {
    Ok(CompressorState {
        feedback: take_opt_lanes(d)?,
        down_feedback: take_opt_lanes(d)?,
        seq: d.u64()?,
        stats: take_compression_stats(d)?,
    })
}

fn put_opt_lanes(e: &mut Enc, lanes: &Option<Vec<Vec<f32>>>) {
    match lanes {
        None => e.bool(false),
        Some(ls) => {
            e.bool(true);
            e.us(ls.len());
            for l in ls {
                e.f32s(l);
            }
        }
    }
}

fn take_opt_lanes(d: &mut Dec) -> io::Result<Option<Vec<Vec<f32>>>> {
    if !d.bool()? {
        return Ok(None);
    }
    let n = d.len(8)?;
    Ok(Some((0..n).map(|_| d.f32s()).collect::<io::Result<Vec<Vec<f32>>>>()?))
}

fn put_compression_stats(e: &mut Enc, s: &CompressionStats) {
    e.u64(s.encodes);
    e.u64(s.uncompressed_bytes);
    e.u64(s.compressed_bytes);
    e.f64(s.sum_sq_error);
    e.u64(s.coords);
    e.f64(s.residual_norm_sum);
    e.u64(s.ef_transmits);
}

fn take_compression_stats(d: &mut Dec) -> io::Result<CompressionStats> {
    Ok(CompressionStats {
        encodes: d.u64()?,
        uncompressed_bytes: d.u64()?,
        compressed_bytes: d.u64()?,
        sum_sq_error: d.f64()?,
        coords: d.u64()?,
        residual_norm_sum: d.f64()?,
        ef_transmits: d.u64()?,
    })
}

fn put_agent(e: &mut Enc, a: &AgentState) {
    e.f32s(&a.actor);
    e.f32s(&a.critic);
    e.f32s(&a.actor_target);
    e.f32s(&a.critic_target);
    put_replay(e, &a.replay);
    e.rng(&a.rng);
    match &a.ou {
        None => e.bool(false),
        Some(ou) => {
            e.bool(true);
            e.f32s(&ou.state);
            e.rng(&ou.rng);
        }
    }
    e.f64(a.rho);
    e.u64(a.updates);
    match &a.last_stats {
        None => e.bool(false),
        Some(u) => {
            e.bool(true);
            e.f64(u.mean_q);
            e.f64(u.mean_abs_td);
            e.f64(u.max_abs_td);
            e.f64(u.critic_grad_norm);
            e.f64(u.actor_grad_norm);
        }
    }
}

fn take_agent(d: &mut Dec) -> io::Result<AgentState> {
    let actor = d.f32s()?;
    let critic = d.f32s()?;
    let actor_target = d.f32s()?;
    let critic_target = d.f32s()?;
    let replay = take_replay(d)?;
    let rng = d.rng()?;
    let ou = if d.bool()? { Some(OuState { state: d.f32s()?, rng: d.rng()? }) } else { None };
    let rho = d.f64()?;
    let updates = d.u64()?;
    let last_stats = if d.bool()? {
        Some(UpdateStats {
            mean_q: d.f64()?,
            mean_abs_td: d.f64()?,
            max_abs_td: d.f64()?,
            critic_grad_norm: d.f64()?,
            actor_grad_norm: d.f64()?,
        })
    } else {
        None
    };
    Ok(AgentState {
        actor,
        critic,
        actor_target,
        critic_target,
        replay,
        rng,
        ou,
        rho,
        updates,
        last_stats,
    })
}

fn put_replay(e: &mut Enc, r: &ReplayState) {
    e.us(r.items.len());
    for t in &r.items {
        e.f32s(&t.state);
        e.us(t.action);
        e.f32(t.reward);
        e.f32s(&t.next_state);
        e.bool(t.done);
    }
    e.f64s(&r.weights);
    e.us(r.next_slot);
    e.f64(r.max_priority);
    e.u64(r.pushes);
    e.u64s(&r.inserted_at);
}

fn take_replay(d: &mut Dec) -> io::Result<ReplayState> {
    let n = d.len(1)?;
    let mut items = Vec::with_capacity(n);
    for _ in 0..n {
        items.push(Transition {
            state: d.f32s()?,
            action: d.us()?,
            reward: d.f32()?,
            next_state: d.f32s()?,
            done: d.bool()?,
        });
    }
    Ok(ReplayState {
        items,
        weights: d.f64s()?,
        next_slot: d.us()?,
        max_priority: d.f64()?,
        pushes: d.u64()?,
        inserted_at: d.u64s()?,
    })
}

fn put_record(e: &mut Enc, r: &EpochRecord) {
    e.us(r.epoch);
    e.f32(r.train_loss);
    match r.test_accuracy {
        None => e.bool(false),
        Some(a) => {
            e.bool(true);
            e.f64(a);
        }
    }
    put_traffic(e, &r.traffic);
    e.f64(r.sim_time);
    e.us(r.dropped_clients);
    e.us(r.stale_clients);
    e.us(r.rejected_migrations);
    e.u64(r.bytes_saved);
    put_phase(e, &r.phase);
    e.u64(r.retransmits);
    e.u64(r.late_uploads);
}

fn take_record(d: &mut Dec) -> io::Result<EpochRecord> {
    let epoch = d.us()?;
    let train_loss = d.f32()?;
    let test_accuracy = if d.bool()? { Some(d.f64()?) } else { None };
    Ok(EpochRecord {
        epoch,
        train_loss,
        test_accuracy,
        traffic: take_traffic(d)?,
        sim_time: d.f64()?,
        dropped_clients: d.us()?,
        stale_clients: d.us()?,
        rejected_migrations: d.us()?,
        bytes_saved: d.u64()?,
        phase: take_phase(d)?,
        retransmits: d.u64()?,
        late_uploads: d.u64()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stamp() -> RunStamp {
        RunStamp {
            scheme: "FedMigr".into(),
            seed: 7,
            epochs: 40,
            clients: 2,
            num_params: 3,
            codec: "identity".into(),
            transport: "lockstep".into(),
            agg_interval: 10,
            mode: "dense".into(),
        }
    }

    fn sample_state() -> RunState {
        RunState {
            epoch: 6,
            global: vec![0.5, -1.25, 3.0],
            clients: vec![
                ClientState {
                    params: vec![0.5, -1.0, 2.0],
                    rng: [1, 2, 3, 4],
                    indices: vec![4, 0, 2],
                    migrations_received: 1,
                },
                ClientState {
                    params: vec![-0.5, 1.0, -2.0],
                    rng: [5, 6, 7, 8],
                    indices: vec![1, 3],
                    migrations_received: 0,
                },
            ],
            rng: [9, 10, 11, 12],
            meter: MeterState {
                traffic: TrafficBreakdown { c2s: 100, c2c_local: 50, c2c_global: 25 },
                overhead: 8,
                transfer_seconds: 1.5,
                compute_cost: 240.0,
            },
            clock_now: 12.5,
            phase: PhaseBreakdown { train_s: 6.0, c2s_s: 4.0, migration_s: 2.0, backoff_s: 0.5 },
            fault_stats: FaultStats { client_drops: 2, client_panics: 1, ..Default::default() },
            flaky: vec![0.1, 0.0],
            taccum: TransportAccumState {
                stats: TransportStats { flows: 12, retransmits: 3, ..Default::default() },
                queue_delays: vec![0.1, 0.4],
                utils: vec![0.8],
            },
            late_buf: vec![LateUploadState { client: 1, params: vec![1.0, 2.0, 3.0], seq: 2 }],
            agg_seq: 3,
            quarantine: Some(QuarantineState {
                norms: vec![1.0, 1.5],
                suspicion: vec![0.0, 0.6],
                rejected: 2,
            }),
            robust_total: RobustStats { nan_uploads: 4, ..Default::default() },
            mix: vec![vec![0.25, 0.75], vec![0.5, 0.5]],
            train_mix: vec![vec![0.3, 0.7], vec![0.6, 0.4]],
            compressor: CompressorState {
                feedback: Some(vec![vec![0.1, 0.2, 0.3], vec![0.0; 3]]),
                down_feedback: None,
                seq: 19,
                stats: CompressionStats { encodes: 19, coords: 57, ..Default::default() },
            },
            agent: Some(AgentSnapshot {
                agent: AgentState {
                    actor: vec![0.1, 0.2],
                    critic: vec![0.3],
                    actor_target: vec![0.1, 0.2],
                    critic_target: vec![0.3],
                    replay: ReplayState {
                        items: vec![Transition {
                            state: vec![1.0, 0.0],
                            action: 1,
                            reward: -0.5,
                            next_state: vec![0.0, 1.0],
                            done: false,
                        }],
                        weights: vec![1.0],
                        next_slot: 1,
                        max_priority: 1.0,
                        pushes: 1,
                        inserted_at: vec![0],
                    },
                    rng: [13, 14, 15, 16],
                    ou: Some(OuState { state: vec![0.05, -0.05], rng: [17, 18, 19, 20] }),
                    rho: 0.35,
                    updates: 11,
                    last_stats: Some(UpdateStats {
                        mean_q: 0.2,
                        mean_abs_td: 0.1,
                        max_abs_td: 0.4,
                        critic_grad_norm: 1.1,
                        actor_grad_norm: 0.9,
                    }),
                },
                pending: vec![(vec![1.0, 2.0], 0, 1)],
            }),
            records: vec![EpochRecord {
                epoch: 6,
                train_loss: 1.25,
                test_accuracy: Some(0.5),
                traffic: TrafficBreakdown { c2s: 100, c2c_local: 50, c2c_global: 25 },
                sim_time: 12.5,
                dropped_clients: 1,
                stale_clients: 0,
                rejected_migrations: 2,
                bytes_saved: 0,
                phase: PhaseBreakdown {
                    train_s: 6.0,
                    c2s_s: 4.0,
                    migration_s: 2.0,
                    backoff_s: 0.5,
                },
                retransmits: 3,
                late_uploads: 1,
            }],
            link_migrations: vec![0, 1, 2, 0],
            migrations_local: 2,
            migrations_global: 1,
            prev_loss: Some(1.25),
            last_epoch_usage: (0.1, 0.2),
            last_step_reward: -0.75,
            excluded: vec![false, true],
            recovery: RecoveryStats {
                checkpoints_written: 2,
                checkpoint_bytes: 4096,
                checkpoints_loaded: 1,
                rollbacks: 0,
                rounds_replayed: 0,
            },
        }
    }

    #[test]
    fn state_round_trips_bit_for_bit() {
        let s = sample_state();
        let bytes = s.to_bytes(&stamp());
        let back = RunState::from_bytes(&bytes, &stamp()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn every_stamp_field_is_validated() {
        let s = sample_state();
        let bytes = s.to_bytes(&stamp());
        type Mutation = Box<dyn Fn(&mut RunStamp)>;
        let mutations: Vec<(&str, Mutation)> = vec![
            ("scheme", Box::new(|st| st.scheme = "FedAvg".into())),
            ("seed", Box::new(|st| st.seed = 8)),
            ("epochs", Box::new(|st| st.epochs = 41)),
            ("clients", Box::new(|st| st.clients = 3)),
            ("num_params", Box::new(|st| st.num_params = 4)),
            ("codec", Box::new(|st| st.codec = "int8+ef".into())),
            ("transport", Box::new(|st| st.transport = "flow".into())),
            ("agg_interval", Box::new(|st| st.agg_interval = 5)),
            ("mode", Box::new(|st| st.mode = "fleet".into())),
        ];
        for (name, mutate) in mutations {
            let mut wrong = stamp();
            mutate(&mut wrong);
            let err = RunState::from_bytes(&bytes, &wrong).unwrap_err();
            assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "{name}");
            assert!(err.to_string().contains(name), "{name}: {err}");
        }
    }

    #[test]
    fn bit_flips_are_rejected() {
        let s = sample_state();
        let bytes = s.to_bytes(&stamp());
        for pos in (0..bytes.len()).step_by(97) {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 0x10;
            let err = RunState::from_bytes(&corrupt, &stamp()).unwrap_err();
            assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "byte {pos}");
        }
    }

    #[test]
    fn truncations_are_rejected() {
        let s = sample_state();
        let bytes = s.to_bytes(&stamp());
        for keep in [0, 7, 8, 12, bytes.len() / 2, bytes.len() - 1] {
            let err = RunState::from_bytes(&bytes[..keep], &stamp()).unwrap_err();
            assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "len {keep}");
        }
    }

    #[test]
    fn wrong_magic_and_version_are_rejected() {
        let s = sample_state();
        let mut bytes = s.to_bytes(&stamp());
        let mut wrong_magic = bytes.clone();
        wrong_magic[..8].copy_from_slice(b"FEDMIGR1");
        assert!(RunState::from_bytes(&wrong_magic, &stamp())
            .unwrap_err()
            .to_string()
            .contains("magic"));
        // A future version must be rejected even with a valid CRC.
        bytes[8] = 3;
        let body_len = bytes.len() - 4;
        let crc = crc32(&bytes[..body_len]).to_le_bytes();
        bytes[body_len..].copy_from_slice(&crc);
        assert!(RunState::from_bytes(&bytes, &stamp())
            .unwrap_err()
            .to_string()
            .contains("version"));
    }

    fn fleet_stamp() -> RunStamp {
        RunStamp { mode: "fleet".into(), clients: 4, ..stamp() }
    }

    fn sample_fleet_state() -> FleetRunState {
        FleetRunState {
            epoch: 3,
            global: vec![0.25, -0.5, 1.0],
            rng: [21, 22, 23, 24],
            dormant: vec![
                DormantState { rng: Some([1, 2, 3, 4]), migrations_received: 2, participations: 3 },
                DormantState::default(),
                DormantState { rng: None, migrations_received: 0, participations: 1 },
                DormantState { rng: Some([9, 8, 7, 6]), migrations_received: 1, participations: 1 },
            ],
            agent: None,
            meter: MeterState {
                traffic: TrafficBreakdown { c2s: 64, c2c_local: 32, c2c_global: 16 },
                overhead: 4,
                transfer_seconds: 0.5,
                compute_cost: 100.0,
            },
            clock_now: 7.5,
            phase: PhaseBreakdown { train_s: 4.0, c2s_s: 2.0, migration_s: 1.0, backoff_s: 0.5 },
            records: vec![EpochRecord {
                epoch: 3,
                train_loss: 2.0,
                test_accuracy: None,
                traffic: TrafficBreakdown { c2s: 64, c2c_local: 32, c2c_global: 16 },
                sim_time: 7.5,
                dropped_clients: 0,
                stale_clients: 0,
                rejected_migrations: 0,
                bytes_saved: 0,
                phase: PhaseBreakdown {
                    train_s: 4.0,
                    c2s_s: 2.0,
                    migration_s: 1.0,
                    backoff_s: 0.5,
                },
                retransmits: 0,
                late_uploads: 0,
            }],
            migrations_local: 1,
            migrations_global: 2,
            prev_loss: Some(2.0),
            last_epoch_usage: (0.3, 0.4),
            last_step_reward: 0.125,
        }
    }

    #[test]
    fn fleet_state_round_trips_bit_for_bit() {
        let s = sample_fleet_state();
        let bytes = s.to_bytes(&fleet_stamp());
        let back = FleetRunState::from_bytes(&bytes, &fleet_stamp()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn fleet_snapshot_into_dense_run_fails_on_mode() {
        // The cross-mode guard: a fleet checkpoint offered to a dense run
        // (and vice versa) dies on the stamp's mode field with a clear
        // InvalidData message, never a payload-decode panic — even when
        // every other stamp field matches.
        let fleet_bytes = sample_fleet_state().to_bytes(&fleet_stamp());
        let dense_expect = RunStamp { mode: "dense".into(), ..fleet_stamp() };
        let err = RunState::from_bytes(&fleet_bytes, &dense_expect).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("mode mismatch"), "{err}");

        let dense_bytes = sample_state().to_bytes(&stamp());
        let fleet_expect = RunStamp { mode: "fleet".into(), ..stamp() };
        let err = FleetRunState::from_bytes(&dense_bytes, &fleet_expect).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("mode mismatch"), "{err}");
    }

    #[test]
    fn fleet_save_and_load_round_trip_on_disk() {
        let dir = std::env::temp_dir().join("fedmigr_fleet_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fleet_round_3.fmrs");
        let s = sample_fleet_state();
        let wrote = s.save(&path, &fleet_stamp()).unwrap();
        assert_eq!(wrote, std::fs::metadata(&path).unwrap().len());
        let back = FleetRunState::load(&path, &fleet_stamp()).unwrap();
        assert_eq!(back, s);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn save_and_load_round_trip_on_disk() {
        let dir = std::env::temp_dir().join("fedmigr_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt_round_6.fmrs");
        let s = sample_state();
        let wrote = s.save(&path, &stamp()).unwrap();
        assert_eq!(wrote, std::fs::metadata(&path).unwrap().len());
        let back = RunState::load(&path, &stamp()).unwrap();
        assert_eq!(back, s);
        std::fs::remove_file(&path).unwrap();
    }
}
