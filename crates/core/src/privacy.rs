//! (ε, δ)-local differential privacy for transmitted models (Sec. III-E).
//!
//! Before a model leaves its client — for migration or aggregation — its
//! parameter vector is clipped to L2 norm `C` (Eq. 30) and perturbed with
//! Gaussian noise `ζ ~ N(0, σ²)` (Eq. 31), with σ set by the analytic
//! Gaussian-mechanism bound `σ = C · sqrt(2 ln(1.25/δ)) / ε`.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Local differential-privacy configuration.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct DpConfig {
    /// Privacy budget ε (smaller = stronger privacy, more noise).
    pub epsilon: f64,
    /// Failure probability δ of the (ε, δ) guarantee.
    pub delta: f64,
    /// L2 clipping threshold `C` (Eq. 30).
    pub clip: f32,
}

impl DpConfig {
    /// A configuration with the paper's δ = 1e-5 and clipping threshold 10.
    pub fn with_epsilon(epsilon: f64) -> Self {
        Self { epsilon, delta: 1e-5, clip: 10.0 }
    }

    /// Gaussian-mechanism noise scale σ for this budget.
    pub fn sigma(&self) -> f32 {
        assert!(self.epsilon > 0.0 && self.delta > 0.0 && self.delta < 1.0);
        (self.clip as f64 * (2.0 * (1.25 / self.delta).ln()).sqrt() / self.epsilon) as f32
    }

    /// Clips `params` to L2 norm `C` (Eq. 30) and adds `N(0, σ²)` noise to
    /// every coordinate (Eq. 31), in place.
    pub fn apply<R: Rng>(&self, params: &mut [f32], rng: &mut R) {
        let norm: f32 = params.iter().map(|x| x * x).sum::<f32>().sqrt();
        let scale = 1.0 / (norm / self.clip).max(1.0);
        let sigma = self.sigma();
        for p in params.iter_mut() {
            *p = *p * scale + gaussian(rng) * sigma;
        }
    }

    /// Clipping only (for callers that add noise at a different point).
    pub fn clip_only(&self, params: &mut [f32]) {
        let norm: f32 = params.iter().map(|x| x * x).sum::<f32>().sqrt();
        let scale = 1.0 / (norm / self.clip).max(1.0);
        for p in params.iter_mut() {
            *p *= scale;
        }
    }
}

fn gaussian<R: Rng>(rng: &mut R) -> f32 {
    let u1: f32 = rng.random::<f32>().max(1e-7);
    let u2: f32 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sigma_grows_as_epsilon_shrinks() {
        let strong = DpConfig::with_epsilon(10.0);
        let weak = DpConfig::with_epsilon(100.0);
        assert!(strong.sigma() > weak.sigma());
        assert!((strong.sigma() / weak.sigma() - 10.0).abs() < 1e-3);
    }

    #[test]
    fn clip_bounds_norm_and_preserves_small_vectors() {
        let cfg = DpConfig { epsilon: 100.0, delta: 1e-5, clip: 1.0 };
        let mut big = vec![3.0f32, 4.0]; // norm 5
        cfg.clip_only(&mut big);
        let norm: f32 = big.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-6);

        let mut small = vec![0.3f32, 0.4]; // norm 0.5 < C
        let before = small.clone();
        cfg.clip_only(&mut small);
        assert_eq!(small, before);
    }

    #[test]
    fn apply_adds_noise_of_expected_scale() {
        let cfg = DpConfig { epsilon: 50.0, delta: 1e-5, clip: 1.0 };
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let mut v = vec![0.0f32; n];
        cfg.apply(&mut v, &mut rng);
        let mean: f32 = v.iter().sum::<f32>() / n as f32;
        let std: f32 = (v.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32).sqrt();
        let expected = cfg.sigma();
        assert!(mean.abs() < expected * 0.05, "mean {mean}");
        assert!((std / expected - 1.0).abs() < 0.05, "std {std} vs sigma {expected}");
    }

    #[test]
    fn smaller_epsilon_means_more_distortion() {
        let mut rng = StdRng::seed_from_u64(2);
        let base: Vec<f32> = (0..512).map(|i| (i as f32 * 0.01).sin()).collect();
        let distortion = |eps: f64, rng: &mut StdRng| {
            let cfg = DpConfig::with_epsilon(eps);
            let mut v = base.clone();
            cfg.apply(&mut v, rng);
            v.iter().zip(&base).map(|(a, b)| (a - b) * (a - b)).sum::<f32>()
        };
        let strong = distortion(50.0, &mut rng);
        let weak = distortion(500.0, &mut rng);
        // The noise variance differs 100x; clipping contributes a common
        // floor, so require a conservative 5x gap.
        assert!(strong > weak * 5.0, "strong {strong} weak {weak}");
    }
}
