//! End-to-end Byzantine-robustness tests: attack determinism, the
//! defense/vulnerability split between FedAvg and the robust aggregation
//! rules, and the migration quarantine. Named `byzantine_*` so CI can run
//! exactly this suite with `cargo test -p fedmigr-core byzantine`.

use fedmigr_core::{Aggregator, Experiment, RunConfig, Scheme};
use fedmigr_data::{partition_iid, partition_shards, SyntheticConfig, SyntheticDataset};
use fedmigr_net::{AttackConfig, ClientCompute, DeviceTier, Topology, TopologyConfig};
use fedmigr_nn::zoo::{self, NetScale};

fn small_experiment(non_iid: bool) -> Experiment {
    let data = SyntheticDataset::generate(&SyntheticConfig {
        num_classes: 4,
        train_per_class: 24,
        test_per_class: 8,
        channels: 1,
        hw: 8,
        noise_std: 0.6,
        class_sep: 1.0,
        atom_bank: 0,
        atoms_per_class: 0,
        private_frac: 0.0,
        seed: 11,
    });
    let k = 4;
    let parts = if non_iid {
        partition_shards(&data.train, k, 1, 5)
    } else {
        partition_iid(&data.train, k, 5)
    };
    let topo = Topology::new(&TopologyConfig::default_edge(vec![2, 2], 5));
    let model = zoo::mini_resnet(1, 8, 4, 1, NetScale::Small, 5);
    Experiment::new(
        data.train,
        data.test,
        parts,
        topo,
        ClientCompute::homogeneous(k, DeviceTier::Nx),
        model,
    )
}

fn quick_cfg(scheme: Scheme, epochs: usize) -> RunConfig {
    let mut cfg = RunConfig::new(scheme, epochs);
    cfg.agg_interval = 5;
    cfg.eval_interval = 5;
    cfg.batch_size = 16;
    cfg.lr = 0.05;
    cfg
}

#[test]
fn byzantine_free_fedavg_runs_are_byte_identical_and_clean() {
    let exp = small_experiment(false);
    let cfg = quick_cfg(Scheme::FedAvg, 10);
    let a = exp.run(&cfg);
    let b = exp.run(&cfg);
    assert_eq!(a.to_csv(), b.to_csv(), "same config must replay bit-for-bit");
    assert!(!a.robust.any(), "no adversary -> every defense counter stays zero: {:?}", a.robust);
    assert!(a.robust_summary().is_none());
}

#[test]
fn byzantine_attack_seed_gives_byte_identical_robust_csv() {
    let exp = small_experiment(false);
    let mut cfg = quick_cfg(Scheme::FedAvg, 10);
    cfg.attack = AttackConfig::nan_inject(0.25, 99);
    cfg.aggregator = Aggregator::trimmed_mean();
    let a = exp.run(&cfg);
    let b = exp.run(&cfg);
    assert_eq!(a.robust_csv(), b.robust_csv(), "attack must be a pure function of its seed");
    assert_eq!(a.to_csv(), b.to_csv());
    assert!(a.robust.nan_uploads > 0, "NaN injection must be observed: {:?}", a.robust);
}

#[test]
fn byzantine_sign_flip_cripples_fedavg_but_robust_rules_hold() {
    let exp = small_experiment(false);
    let clean = exp.run(&quick_cfg(Scheme::FedAvg, 16));

    let attacked = |aggregator: Aggregator| {
        let mut cfg = quick_cfg(Scheme::FedAvg, 16);
        cfg.attack = AttackConfig::sign_flip(0.25, 99);
        cfg.aggregator = aggregator;
        exp.run(&cfg)
    };
    let naive = attacked(Aggregator::FedAvg);
    let trimmed = attacked(Aggregator::trimmed_mean());
    let krum = attacked(Aggregator::krum(1));

    let floor = 0.8 * clean.final_accuracy();
    assert!(
        trimmed.final_accuracy() >= floor,
        "TrimmedMean {} vs clean {}",
        trimmed.final_accuracy(),
        clean.final_accuracy()
    );
    assert!(
        krum.final_accuracy() >= floor,
        "Krum {} vs clean {}",
        krum.final_accuracy(),
        clean.final_accuracy()
    );
    assert!(
        naive.final_accuracy() < trimmed.final_accuracy(),
        "plain FedAvg must degrade measurably: naive {} vs trimmed {}",
        naive.final_accuracy(),
        trimmed.final_accuracy()
    );
    assert!(trimmed.robust.trimmed_clients > 0);
}

#[test]
fn byzantine_nan_migrations_are_quarantined() {
    let exp = small_experiment(true);
    let mut cfg = quick_cfg(Scheme::RandMigr, 12);
    cfg.attack = AttackConfig::nan_inject(0.25, 99);
    cfg.aggregator = Aggregator::CoordinateMedian;
    let m = exp.run(&cfg);
    assert!(
        m.robust.rejected_migrations > 0,
        "poisoned migrations must be rejected at the receiver: {:?}",
        m.robust
    );
    assert!(m.final_accuracy().is_finite());
    assert!(m.robust_summary().is_some());
    // The per-epoch CSV carries the rejection column.
    assert!(m.to_csv().lines().next().unwrap().contains("rejected_migrations"));
}

#[test]
fn byzantine_zero_attackers_mean_zero_rejections_for_robust_rules() {
    let exp = small_experiment(true);
    for aggregator in [
        Aggregator::trimmed_mean(),
        Aggregator::CoordinateMedian,
        Aggregator::krum(1),
        Aggregator::norm_clip(),
    ] {
        let mut cfg = quick_cfg(Scheme::RandMigr, 10);
        cfg.aggregator = aggregator;
        let m = exp.run(&cfg);
        assert_eq!(
            m.robust.rejected_migrations,
            0,
            "{}: clean migrations must never be rejected",
            aggregator.name()
        );
        assert_eq!(m.robust.nan_uploads, 0, "{}", aggregator.name());
        assert_eq!(m.robust.nan_batches, 0, "{}", aggregator.name());
        assert!(m.final_accuracy() > 0.25, "{} failed to learn", aggregator.name());
    }
}

#[test]
fn byzantine_label_flip_and_scaled_replacement_complete() {
    let exp = small_experiment(false);

    let mut cfg = quick_cfg(Scheme::FedAvg, 10);
    cfg.attack = AttackConfig::label_flip(0.25, 99);
    let flipped = exp.run(&cfg);
    assert!(flipped.final_accuracy().is_finite());
    assert_eq!(flipped.robust.rejected_migrations, 0, "label flip corrupts data, not payloads");

    let mut cfg = quick_cfg(Scheme::FedAvg, 10);
    cfg.attack = AttackConfig::scaled(0.25, -10.0, 99);
    cfg.aggregator = Aggregator::norm_clip();
    let clipped = exp.run(&cfg);
    assert!(
        clipped.robust.clipped_norms > 0,
        "boosted replacement updates must be clipped: {:?}",
        clipped.robust
    );
    assert!(clipped.final_accuracy().is_finite());
}

#[test]
fn byzantine_fedmigr_scheme_survives_an_attack() {
    let exp = small_experiment(true);
    let mut cfg = quick_cfg(Scheme::fedmigr(3), 12);
    cfg.attack = AttackConfig::sign_flip(0.25, 99);
    cfg.aggregator = Aggregator::trimmed_mean();
    let m = exp.run(&cfg);
    assert_eq!(m.epochs(), 12);
    assert!(m.final_accuracy().is_finite());
    // The DRL state gained per-peer suspicion features and the oracle a
    // keep-suspects-home penalty; the run must still plan and migrate.
    assert!(m.migrations_local + m.migrations_global + m.robust.rejected_migrations > 0);
}
