//! Numerically stable row-wise softmax / log-softmax and argmax helpers.

use crate::kcount::{self, Kernel};
use crate::Tensor;

/// Row-wise softmax of a 2-D tensor `[B, L]`.
///
/// Each row is shifted by its maximum before exponentiation so the result is
/// stable for large logits.
pub fn softmax_rows(logits: &Tensor) -> Tensor {
    let (b, l) = (logits.rows(), logits.cols());
    let numel = (b * l) as u64;
    let _k = kcount::scope(Kernel::Softmax, 5 * numel, 8 * numel);
    let mut out = vec![0.0f32; b * l];
    for r in 0..b {
        let row = logits.row(r);
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let dest = &mut out[r * l..(r + 1) * l];
        let mut sum = 0.0f32;
        for (d, &x) in dest.iter_mut().zip(row) {
            let e = (x - max).exp();
            *d = e;
            sum += e;
        }
        let inv = 1.0 / sum;
        for d in dest.iter_mut() {
            *d *= inv;
        }
    }
    Tensor::from_vec(vec![b, l], out)
}

/// Row-wise log-softmax of a 2-D tensor `[B, L]`.
pub fn log_softmax_rows(logits: &Tensor) -> Tensor {
    let (b, l) = (logits.rows(), logits.cols());
    let numel = (b * l) as u64;
    let _k = kcount::scope(Kernel::Softmax, 5 * numel, 8 * numel);
    let mut out = vec![0.0f32; b * l];
    for r in 0..b {
        let row = logits.row(r);
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let lse = max + row.iter().map(|&x| (x - max).exp()).sum::<f32>().ln();
        for (d, &x) in out[r * l..(r + 1) * l].iter_mut().zip(row) {
            *d = x - lse;
        }
    }
    Tensor::from_vec(vec![b, l], out)
}

/// Index of the maximum element of a slice (first on ties).
///
/// # Panics
/// Panics on an empty slice.
pub fn argmax_slice(xs: &[f32]) -> usize {
    assert!(!xs.is_empty(), "argmax of empty slice");
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate() {
        if x > xs[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]);
        let p = softmax_rows(&logits);
        for r in 0..2 {
            let s: f32 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
        // Larger logit gets larger probability.
        assert!(p.at2(0, 2) > p.at2(0, 1));
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let logits = Tensor::from_vec(vec![1, 2], vec![1000.0, 999.0]);
        let p = softmax_rows(&logits);
        assert!(p.data().iter().all(|x| x.is_finite()));
        assert!(p.at2(0, 0) > p.at2(0, 1));
    }

    #[test]
    fn log_softmax_matches_softmax_log() {
        let logits = Tensor::from_vec(vec![1, 4], vec![0.5, -0.5, 2.0, 0.0]);
        let ls = log_softmax_rows(&logits);
        let p = softmax_rows(&logits);
        for (a, b) in ls.data().iter().zip(p.data()) {
            assert!((a - b.ln()).abs() < 1e-5);
        }
    }

    #[test]
    fn argmax_first_on_ties() {
        assert_eq!(argmax_slice(&[1.0, 3.0, 3.0, 2.0]), 1);
        assert_eq!(argmax_slice(&[-5.0]), 0);
    }
}
