use rand::Rng;

/// A dense, row-major `f32` tensor with a dynamic shape.
///
/// Invariant: `data.len() == shape.iter().product()`. A zero-dimensional
/// shape is not allowed; scalars are represented as `[1]`.
#[derive(Clone, Debug, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor from a shape and backing data.
    ///
    /// # Panics
    /// Panics if the data length does not match the shape product or the
    /// shape is empty.
    pub fn from_vec(shape: Vec<usize>, data: Vec<f32>) -> Self {
        assert!(!shape.is_empty(), "tensor shape must be non-empty");
        let numel: usize = shape.iter().product();
        assert_eq!(
            numel,
            data.len(),
            "shape {shape:?} implies {numel} elements but data has {}",
            data.len()
        );
        Self { shape, data }
    }

    /// A tensor of zeros with the given shape.
    pub fn zeros(shape: &[usize]) -> Self {
        let numel: usize = shape.iter().product();
        Self::from_vec(shape.to_vec(), vec![0.0; numel])
    }

    /// A tensor of ones with the given shape.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// A tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let numel: usize = shape.iter().product();
        Self::from_vec(shape.to_vec(), vec![value; numel])
    }

    /// A tensor with entries drawn from `N(0, std^2)` using `rng`.
    ///
    /// Sampling uses the Box–Muller transform so only a uniform source is
    /// needed; this keeps initialization reproducible across `rand`
    /// versions for a fixed seed.
    pub fn randn<R: Rng>(shape: &[usize], std: f32, rng: &mut R) -> Self {
        let numel: usize = shape.iter().product();
        let mut data = Vec::with_capacity(numel);
        while data.len() < numel {
            let u1: f32 = rng.random::<f32>().max(1e-7);
            let u2: f32 = rng.random();
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(r * theta.cos() * std);
            if data.len() < numel {
                data.push(r * theta.sin() * std);
            }
        }
        Self::from_vec(shape.to_vec(), data)
    }

    /// The shape of this tensor.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    #[inline]
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Immutable view of the backing data (row-major).
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing data (row-major).
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its backing data.
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Panics
    /// Panics if the element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Self {
        let numel: usize = shape.iter().product();
        assert_eq!(numel, self.data.len(), "reshape must preserve element count");
        Self::from_vec(shape.to_vec(), self.data.clone())
    }

    /// Number of rows when interpreted as a 2-D matrix.
    ///
    /// # Panics
    /// Panics unless the tensor is 2-D.
    pub fn rows(&self) -> usize {
        assert_eq!(self.shape.len(), 2, "rows() requires a 2-D tensor");
        self.shape[0]
    }

    /// Number of columns when interpreted as a 2-D matrix.
    ///
    /// # Panics
    /// Panics unless the tensor is 2-D.
    pub fn cols(&self) -> usize {
        assert_eq!(self.shape.len(), 2, "cols() requires a 2-D tensor");
        self.shape[1]
    }

    /// Element access for a 2-D tensor.
    #[inline]
    pub fn at2(&self, r: usize, c: usize) -> f32 {
        debug_assert_eq!(self.shape.len(), 2);
        self.data[r * self.shape[1] + c]
    }

    /// Mutable element access for a 2-D tensor.
    #[inline]
    pub fn at2_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        debug_assert_eq!(self.shape.len(), 2);
        &mut self.data[r * self.shape[1] + c]
    }

    /// Returns the `r`-th row of a 2-D tensor as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert_eq!(self.shape.len(), 2);
        let w = self.shape[1];
        &self.data[r * w..(r + 1) * w]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn from_vec_checks_shape() {
        let t = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.numel(), 4);
        assert_eq!(t.at2(1, 0), 3.0);
    }

    #[test]
    #[should_panic(expected = "implies")]
    fn from_vec_rejects_mismatch() {
        let _ = Tensor::from_vec(vec![2, 2], vec![1.0]);
    }

    #[test]
    fn zeros_ones_full() {
        assert!(Tensor::zeros(&[3, 4]).data().iter().all(|&x| x == 0.0));
        assert!(Tensor::ones(&[5]).data().iter().all(|&x| x == 1.0));
        assert!(Tensor::full(&[2, 2], 7.5).data().iter().all(|&x| x == 7.5));
    }

    #[test]
    fn randn_is_deterministic_per_seed() {
        let mut r1 = StdRng::seed_from_u64(42);
        let mut r2 = StdRng::seed_from_u64(42);
        let a = Tensor::randn(&[4, 4], 1.0, &mut r1);
        let b = Tensor::randn(&[4, 4], 1.0, &mut r2);
        assert_eq!(a, b);
    }

    #[test]
    fn randn_has_roughly_unit_std() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = Tensor::randn(&[10_000], 1.0, &mut rng);
        let mean: f32 = t.data().iter().sum::<f32>() / t.numel() as f32;
        let var: f32 =
            t.data().iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / t.numel() as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![2, 3], (0..6).map(|x| x as f32).collect());
        let r = t.reshape(&[3, 2]);
        assert_eq!(r.shape(), &[3, 2]);
        assert_eq!(r.data(), t.data());
    }

    #[test]
    fn row_returns_expected_slice() {
        let t = Tensor::from_vec(vec![2, 3], (0..6).map(|x| x as f32).collect());
        assert_eq!(t.row(1), &[3.0, 4.0, 5.0]);
    }
}
