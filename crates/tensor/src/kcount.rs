//! Thread-local kernel accounting: FLOPs, bytes moved, and wall time per
//! named numeric kernel.
//!
//! Every hot kernel in `fedmigr-tensor` / `fedmigr-nn` opens a [`scope`]
//! guard declaring its arithmetic work (FLOPs) and memory traffic (bytes
//! read + written). The guard times the kernel body and folds the totals
//! into a thread-local table; when a worker thread exits, its table is
//! merged into a process-wide atomic table. Runners snapshot the totals
//! around each phase span and attribute the deltas to phases, which is what
//! turns "naive matmul dominates local_train" into a measured number.
//!
//! Determinism contract: accounting is observation-only. Counters never
//! influence kernel results, so seeded runs are byte-identical with
//! accounting on or off (asserted by `tests/telemetry_e2e.rs`).
//!
//! Cost contract: with the `kcount` cargo feature disabled (it is on by
//! default) [`enabled`] is compile-time `false` and every scope folds to an
//! inert guard. With the feature on but accounting not enabled at runtime,
//! the cost is one relaxed atomic load and a branch per kernel call.
//!
//! Nesting: only the outermost live scope on a thread accrues wall time, so
//! summed kernel seconds never double-count a kernel that calls another
//! (e.g. an optimizer step that scales a tensor). FLOPs and bytes are
//! always credited to the kernel that declared them.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// Number of named kernels (length of [`Kernel::ALL`]).
pub const KERNEL_COUNT: usize = 10;

/// The named kernels with dedicated accounting slots.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// Dense 2-D matrix multiply (`Tensor::matmul`).
    Matmul,
    /// Layout shuffles: `transpose2` and the NCHW↔row-major rearranges in
    /// the convolution forward/backward passes.
    Transpose,
    /// Elementwise maps/zips: add/sub/mul/axpy/scale/map/dot.
    Elementwise,
    /// Patch extraction for convolution (`Conv2d::im2col`).
    Im2col,
    /// Gradient scatter back to image layout (`Conv2d::col2im`).
    Col2im,
    /// L2 norms and distances over flat parameter slices.
    Norm,
    /// Row-wise softmax / log-softmax.
    Softmax,
    /// Max-pool forward/backward window scans.
    Pool,
    /// Batch-norm forward/backward channel loops.
    BatchNorm,
    /// SGD / Adam parameter-update sweeps.
    Optimizer,
}

impl Kernel {
    /// Every kernel, in stable display order.
    pub const ALL: [Kernel; KERNEL_COUNT] = [
        Kernel::Matmul,
        Kernel::Transpose,
        Kernel::Elementwise,
        Kernel::Im2col,
        Kernel::Col2im,
        Kernel::Norm,
        Kernel::Softmax,
        Kernel::Pool,
        Kernel::BatchNorm,
        Kernel::Optimizer,
    ];

    /// Stable lower-case label used in metric families and summary tables.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Matmul => "matmul",
            Kernel::Transpose => "transpose",
            Kernel::Elementwise => "elementwise",
            Kernel::Im2col => "im2col",
            Kernel::Col2im => "col2im",
            Kernel::Norm => "norm",
            Kernel::Softmax => "softmax",
            Kernel::Pool => "pool",
            Kernel::BatchNorm => "batchnorm",
            Kernel::Optimizer => "optimizer",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// Accumulated accounting for one kernel. All additions saturate: a
/// pathological run overflows to `u64::MAX` instead of panicking.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KStat {
    /// Number of kernel invocations.
    pub calls: u64,
    /// Floating-point operations declared by the invocations.
    pub flops: u64,
    /// Bytes read + written declared by the invocations.
    pub bytes: u64,
    /// Wall nanoseconds spent in outermost invocations.
    pub nanos: u64,
}

impl KStat {
    fn absorb(&mut self, calls: u64, flops: u64, bytes: u64, nanos: u64) {
        self.calls = self.calls.saturating_add(calls);
        self.flops = self.flops.saturating_add(flops);
        self.bytes = self.bytes.saturating_add(bytes);
        self.nanos = self.nanos.saturating_add(nanos);
    }

    /// Wall seconds spent in outermost invocations.
    pub fn seconds(&self) -> f64 {
        self.nanos as f64 / 1e9
    }
}

/// A point-in-time copy of all kernel totals (process-wide plus the calling
/// thread's unflushed local table).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelSnapshot {
    stats: [KStat; KERNEL_COUNT],
}

impl KernelSnapshot {
    /// Accounting for one kernel.
    pub fn get(&self, kernel: Kernel) -> KStat {
        self.stats[kernel.index()]
    }

    /// Per-kernel growth since `earlier` (saturating at zero per field).
    pub fn delta(&self, earlier: &KernelSnapshot) -> KernelSnapshot {
        let mut out = KernelSnapshot::default();
        for (i, slot) in out.stats.iter_mut().enumerate() {
            slot.calls = self.stats[i].calls.saturating_sub(earlier.stats[i].calls);
            slot.flops = self.stats[i].flops.saturating_sub(earlier.stats[i].flops);
            slot.bytes = self.stats[i].bytes.saturating_sub(earlier.stats[i].bytes);
            slot.nanos = self.stats[i].nanos.saturating_sub(earlier.stats[i].nanos);
        }
        out
    }

    /// Sum of declared FLOPs across all kernels (saturating).
    pub fn total_flops(&self) -> u64 {
        self.stats.iter().fold(0u64, |acc, s| acc.saturating_add(s.flops))
    }

    /// Sum of outermost wall seconds across all kernels.
    pub fn total_seconds(&self) -> f64 {
        self.stats.iter().map(KStat::seconds).sum()
    }

    /// Whether any kernel recorded any call.
    pub fn is_empty(&self) -> bool {
        self.stats.iter().all(|s| s.calls == 0)
    }
}

const FIELDS: usize = 4;

static ENABLED: AtomicBool = AtomicBool::new(false);
static GLOBAL: [AtomicU64; KERNEL_COUNT * FIELDS] =
    [const { AtomicU64::new(0) }; KERNEL_COUNT * FIELDS];

struct Local {
    stats: RefCell<[KStat; KERNEL_COUNT]>,
    depth: Cell<usize>,
}

impl Drop for Local {
    fn drop(&mut self) {
        flush(&self.stats.borrow());
    }
}

fn flush(stats: &[KStat; KERNEL_COUNT]) {
    for (i, s) in stats.iter().enumerate() {
        if s.calls == 0 {
            continue;
        }
        saturating_fetch_add(&GLOBAL[i * FIELDS], s.calls);
        saturating_fetch_add(&GLOBAL[i * FIELDS + 1], s.flops);
        saturating_fetch_add(&GLOBAL[i * FIELDS + 2], s.bytes);
        saturating_fetch_add(&GLOBAL[i * FIELDS + 3], s.nanos);
    }
}

fn saturating_fetch_add(cell: &AtomicU64, v: u64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = cur.saturating_add(v);
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

thread_local! {
    static LOCAL: Local = Local {
        stats: RefCell::new([KStat::default(); KERNEL_COUNT]),
        depth: Cell::new(0),
    };
}

/// Turns runtime accounting on or off. A no-op (always off) when the
/// `kcount` cargo feature is disabled.
pub fn set_enabled(on: bool) {
    ENABLED.store(on && cfg!(feature = "kcount"), Ordering::Relaxed);
}

/// Whether kernel accounting is currently active.
#[inline]
pub fn enabled() -> bool {
    cfg!(feature = "kcount") && ENABLED.load(Ordering::Relaxed)
}

/// Opens an accounting scope for one kernel invocation, declaring its
/// arithmetic work and memory traffic up front. Inert when accounting is
/// disabled.
#[inline]
pub fn scope(kernel: Kernel, flops: u64, bytes: u64) -> KScope {
    if !enabled() {
        return KScope { kernel, flops: 0, bytes: 0, start: None, outermost: false };
    }
    let outermost = LOCAL
        .try_with(|l| {
            let d = l.depth.get();
            l.depth.set(d + 1);
            d == 0
        })
        .unwrap_or(false);
    KScope { kernel, flops, bytes, start: Some(Instant::now()), outermost }
}

/// RAII guard returned by [`scope`]; records on drop.
pub struct KScope {
    kernel: Kernel,
    flops: u64,
    bytes: u64,
    start: Option<Instant>,
    outermost: bool,
}

impl Drop for KScope {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let nanos = if self.outermost {
            u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
        } else {
            0
        };
        let _ = LOCAL.try_with(|l| {
            l.depth.set(l.depth.get().saturating_sub(1));
            l.stats.borrow_mut()[self.kernel.index()].absorb(1, self.flops, self.bytes, nanos);
        });
    }
}

/// Current totals: the process-wide merged table plus the calling thread's
/// unflushed local table. Worker threads that have exited are fully
/// included; live sibling threads are not — snapshot after joining them.
pub fn snapshot() -> KernelSnapshot {
    let mut out = KernelSnapshot::default();
    for (i, slot) in out.stats.iter_mut().enumerate() {
        slot.calls = GLOBAL[i * FIELDS].load(Ordering::Relaxed);
        slot.flops = GLOBAL[i * FIELDS + 1].load(Ordering::Relaxed);
        slot.bytes = GLOBAL[i * FIELDS + 2].load(Ordering::Relaxed);
        slot.nanos = GLOBAL[i * FIELDS + 3].load(Ordering::Relaxed);
    }
    let _ = LOCAL.try_with(|l| {
        for (i, s) in l.stats.borrow().iter().enumerate() {
            out.stats[i].absorb(s.calls, s.flops, s.bytes, s.nanos);
        }
    });
    out
}

/// Zeroes the process-wide table and the calling thread's local table.
/// Intended for benchmarks and tests; call only while no sibling thread is
/// accounting.
pub fn reset() {
    for cell in &GLOBAL {
        cell.store(0, Ordering::Relaxed);
    }
    let _ = LOCAL.try_with(|l| {
        *l.stats.borrow_mut() = [KStat::default(); KERNEL_COUNT];
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    // The global table is process-wide, so every assertion that touches it
    // lives in this single test to avoid cross-test interference (the rest
    // of the suite keeps accounting disabled).
    #[test]
    #[cfg(feature = "kcount")]
    fn scopes_accumulate_and_merge_across_threads() {
        reset();
        assert!(snapshot().is_empty());

        // Disabled scopes record nothing.
        {
            let _s = scope(Kernel::Matmul, 100, 200);
        }
        assert!(snapshot().is_empty());

        set_enabled(true);
        {
            let _s = scope(Kernel::Matmul, 100, 200);
        }
        {
            let _outer = scope(Kernel::Optimizer, 10, 20);
            let _inner = scope(Kernel::Elementwise, 1, 2);
        }
        std::thread::scope(|s| {
            s.spawn(|| {
                let _s = scope(Kernel::Norm, 7, 8);
            });
        });
        set_enabled(false);

        let snap = snapshot();
        let mm = snap.get(Kernel::Matmul);
        assert_eq!((mm.calls, mm.flops, mm.bytes), (1, 100, 200));
        // Nested scope keeps its flops but cedes wall time to the outer one.
        let inner = snap.get(Kernel::Elementwise);
        assert_eq!((inner.calls, inner.flops, inner.nanos), (1, 1, 0));
        assert!(snap.get(Kernel::Optimizer).nanos > 0);
        // Worker-thread stats merged on thread exit.
        assert_eq!(snap.get(Kernel::Norm).flops, 7);
        assert_eq!(snap.total_flops(), 100 + 10 + 1 + 7);

        // Deltas subtract field-wise.
        let later = {
            set_enabled(true);
            let _s = scope(Kernel::Matmul, 50, 0);
            drop(_s);
            set_enabled(false);
            snapshot()
        };
        let d = later.delta(&snap);
        assert_eq!(d.get(Kernel::Matmul).flops, 50);
        assert_eq!(d.get(Kernel::Norm).calls, 0);
        reset();
    }

    #[test]
    #[cfg(not(feature = "kcount"))]
    fn feature_off_is_compile_time_inert() {
        set_enabled(true);
        assert!(!enabled());
        {
            let _s = scope(Kernel::Matmul, 1, 1);
        }
        assert!(snapshot().is_empty());
    }

    proptest! {
        // Saturation contract: no panic and monotone saturation however
        // large the declared work gets.
        #[test]
        fn kstat_absorb_never_overflows(
            seed in any::<u64>(),
            adds in prop::collection::vec(any::<u64>(), 0..32),
        ) {
            let mut s = KStat { calls: seed, flops: seed, bytes: seed, nanos: seed };
            for a in adds {
                let before = s;
                s.absorb(a, a.rotate_left(17), a.wrapping_mul(3), a | (1 << 63));
                prop_assert!(s.calls >= before.calls || s.calls == u64::MAX);
                prop_assert!(s.flops >= before.flops || s.flops == u64::MAX);
                prop_assert!(s.bytes >= before.bytes || s.bytes == u64::MAX);
                prop_assert!(s.nanos >= before.nanos || s.nanos == u64::MAX);
            }
        }

        #[test]
        fn snapshot_delta_saturates_at_zero(a in any::<u64>(), b in any::<u64>()) {
            let mut early = KernelSnapshot::default();
            let mut late = KernelSnapshot::default();
            early.stats[0] = KStat { calls: a, flops: a, bytes: a, nanos: a };
            late.stats[0] = KStat { calls: b, flops: b, bytes: b, nanos: b };
            let d = late.delta(&early);
            prop_assert_eq!(d.stats[0].calls, b.saturating_sub(a));
            prop_assert_eq!(d.stats[0].flops, b.saturating_sub(a));
        }
    }
}
