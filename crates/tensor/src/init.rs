//! Standard-deviation helpers for weight initialization.

/// He (Kaiming) initialization standard deviation for ReLU networks:
/// `sqrt(2 / fan_in)`.
pub fn he_std(fan_in: usize) -> f32 {
    (2.0 / fan_in as f32).sqrt()
}

/// Xavier (Glorot) initialization standard deviation:
/// `sqrt(2 / (fan_in + fan_out))`.
pub fn xavier_std(fan_in: usize, fan_out: usize) -> f32 {
    (2.0 / (fan_in + fan_out) as f32).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn he_decreases_with_fan_in() {
        assert!(he_std(16) > he_std(256));
        assert!((he_std(2) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn xavier_is_symmetric() {
        assert_eq!(xavier_std(64, 16), xavier_std(16, 64));
    }
}
