use crate::kcount::{self, Kernel};
use crate::Tensor;

// Declared memory traffic is bytes read + written at f32 width; FLOP counts
// follow the usual dense-kernel conventions (multiply-add = 2 FLOPs).
fn n64(n: usize) -> u64 {
    n as u64
}

impl Tensor {
    /// Elementwise addition; shapes must match.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a + b)
    }

    /// Elementwise subtraction; shapes must match.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product; shapes must match.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a * b)
    }

    /// In-place elementwise `self += other`.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in add_assign");
        let _k = kcount::scope(Kernel::Elementwise, n64(self.numel()), 12 * n64(self.numel()));
        for (a, b) in self.data_mut().iter_mut().zip(other.data()) {
            *a += b;
        }
    }

    /// In-place `self += alpha * other` (axpy).
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in axpy");
        let _k = kcount::scope(Kernel::Elementwise, 2 * n64(self.numel()), 12 * n64(self.numel()));
        for (a, b) in self.data_mut().iter_mut().zip(other.data()) {
            *a += alpha * b;
        }
    }

    /// Returns `self * scalar`.
    pub fn scale(&self, scalar: f32) -> Tensor {
        let _k = kcount::scope(Kernel::Elementwise, n64(self.numel()), 8 * n64(self.numel()));
        Tensor::from_vec(self.shape().to_vec(), self.data().iter().map(|x| x * scalar).collect())
    }

    /// In-place multiplication by a scalar.
    pub fn scale_assign(&mut self, scalar: f32) {
        let _k = kcount::scope(Kernel::Elementwise, n64(self.numel()), 8 * n64(self.numel()));
        for x in self.data_mut() {
            *x *= scalar;
        }
    }

    /// Applies `f` elementwise, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        let _k = kcount::scope(Kernel::Elementwise, n64(self.numel()), 8 * n64(self.numel()));
        Tensor::from_vec(self.shape().to_vec(), self.data().iter().map(|&x| f(x)).collect())
    }

    /// Sets every element to zero, preserving the allocation.
    pub fn fill_zero(&mut self) {
        self.data_mut().fill(0.0);
    }

    /// 2-D matrix multiply: `[m, k] x [k, n] -> [m, n]`.
    ///
    /// Implemented as an ikj loop so the inner traversal is contiguous in
    /// both the right operand and the output.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape().len(), 2, "matmul lhs must be 2-D");
        assert_eq!(other.shape().len(), 2, "matmul rhs must be 2-D");
        let (m, k) = (self.rows(), self.cols());
        let (k2, n) = (other.rows(), other.cols());
        assert_eq!(k, k2, "matmul inner dimensions differ: {k} vs {k2}");
        let _k = kcount::scope(
            Kernel::Matmul,
            2 * n64(m) * n64(n) * n64(k),
            4 * (n64(m) * n64(k) + n64(k) * n64(n) + n64(m) * n64(n)),
        );
        let mut out = vec![0.0f32; m * n];
        let a = self.data();
        let b = other.data();
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            let orow = &mut out[i * n..(i + 1) * n];
            for (p, &aip) in arow.iter().enumerate() {
                if aip == 0.0 {
                    continue;
                }
                let brow = &b[p * n..(p + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += aip * bv;
                }
            }
        }
        Tensor::from_vec(vec![m, n], out)
    }

    /// Transpose of a 2-D tensor.
    pub fn transpose2(&self) -> Tensor {
        let (m, n) = (self.rows(), self.cols());
        let _k = kcount::scope(Kernel::Transpose, 0, 8 * n64(m) * n64(n));
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.at2(i, j);
            }
        }
        Tensor::from_vec(vec![n, m], out)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data().iter().sum()
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f32 {
        self.sum() / self.numel() as f32
    }

    /// Euclidean (L2) norm of the flattened tensor.
    pub fn l2_norm(&self) -> f32 {
        let _k = kcount::scope(Kernel::Norm, 2 * n64(self.numel()), 4 * n64(self.numel()));
        self.data().iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Euclidean distance between two same-shape tensors, flattened.
    ///
    /// # Panics
    /// Panics on a shape mismatch.
    pub fn l2_distance(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape(), other.shape(), "l2_distance shape mismatch");
        crate::norms::l2_distance_slice(self.data(), other.data()) as f32
    }

    /// Column sums of a 2-D tensor: `[m, n] -> [n]`.
    pub fn sum_axis0(&self) -> Tensor {
        let (m, n) = (self.rows(), self.cols());
        let mut out = vec![0.0f32; n];
        for r in 0..m {
            for (o, &v) in out.iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
        Tensor::from_vec(vec![n], out)
    }

    /// Maximum element (NaN-free input assumed).
    pub fn max(&self) -> f32 {
        self.data().iter().cloned().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element (NaN-free input assumed).
    pub fn min(&self) -> f32 {
        self.data().iter().cloned().fold(f32::INFINITY, f32::min)
    }

    /// Elementwise clamp into `[lo, hi]`.
    pub fn clip(&self, lo: f32, hi: f32) -> Tensor {
        assert!(lo <= hi, "invalid clip range");
        self.map(|x| x.clamp(lo, hi))
    }

    /// Dot product of two tensors of identical shape.
    pub fn dot(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in dot");
        let _k = kcount::scope(Kernel::Elementwise, 2 * n64(self.numel()), 8 * n64(self.numel()));
        self.data().iter().zip(other.data()).map(|(a, b)| a * b).sum()
    }

    fn zip_with(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in elementwise op");
        let _k = kcount::scope(Kernel::Elementwise, n64(self.numel()), 12 * n64(self.numel()));
        let data = self.data().iter().zip(other.data()).map(|(&a, &b)| f(a, b)).collect();
        Tensor::from_vec(self.shape().to_vec(), data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(shape: &[usize], data: &[f32]) -> Tensor {
        Tensor::from_vec(shape.to_vec(), data.to_vec())
    }

    #[test]
    fn elementwise_ops() {
        let a = t(&[2, 2], &[1.0, 2.0, 3.0, 4.0]);
        let b = t(&[2, 2], &[4.0, 3.0, 2.0, 1.0]);
        assert_eq!(a.add(&b).data(), &[5.0, 5.0, 5.0, 5.0]);
        assert_eq!(a.sub(&b).data(), &[-3.0, -1.0, 1.0, 3.0]);
        assert_eq!(a.mul(&b).data(), &[4.0, 6.0, 6.0, 4.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = t(&[3], &[1.0, 1.0, 1.0]);
        let b = t(&[3], &[1.0, 2.0, 3.0]);
        a.axpy(0.5, &b);
        assert_eq!(a.data(), &[1.5, 2.0, 2.5]);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = t(&[2, 3], &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t(&[3, 2], &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = t(&[2, 2], &[1.0, 2.0, 3.0, 4.0]);
        let i = t(&[2, 2], &[1.0, 0.0, 0.0, 1.0]);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_rejects_bad_dims() {
        let a = t(&[2, 3], &[0.0; 6]);
        let b = t(&[2, 3], &[0.0; 6]);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_round_trips() {
        let a = t(&[2, 3], &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose2().transpose2(), a);
        assert_eq!(a.transpose2().at2(2, 1), 6.0);
    }

    #[test]
    fn sum_axis0_sums_columns() {
        let a = t(&[2, 3], &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.sum_axis0().data(), &[5.0, 7.0, 9.0]);
    }

    #[test]
    fn min_max_clip_dot() {
        let a = t(&[4], &[-2.0, 0.5, 3.0, 1.0]);
        assert_eq!(a.max(), 3.0);
        assert_eq!(a.min(), -2.0);
        assert_eq!(a.clip(-1.0, 1.0).data(), &[-1.0, 0.5, 1.0, 1.0]);
        let b = t(&[4], &[1.0, 2.0, 0.0, -1.0]);
        assert_eq!(a.dot(&b), -2.0 + 1.0 + 0.0 - 1.0);
    }

    #[test]
    fn reductions() {
        let a = t(&[4], &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.sum(), 10.0);
        assert_eq!(a.mean(), 2.5);
        assert!((a.l2_norm() - 30.0f32.sqrt()).abs() < 1e-6);
    }
}
