//! Norm and pairwise-distance helpers over flat parameter slices.
//!
//! Byzantine-robust aggregation rules (Krum, trimmed mean, norm clipping)
//! and the migration quarantine all operate on flattened model-parameter
//! vectors rather than shaped tensors, so these helpers take `&[f32]`
//! directly. Accumulation is in `f64`: parameter vectors run to hundreds of
//! thousands of coordinates and an `f32` sum of squares loses enough
//! precision to reorder near-tied Krum scores between platforms.

use crate::kcount::{self, Kernel};

/// Euclidean norm of a flat slice, accumulated in `f64`.
pub fn l2_norm_slice(xs: &[f32]) -> f64 {
    let _k = kcount::scope(Kernel::Norm, 2 * xs.len() as u64, 4 * xs.len() as u64);
    xs.iter().map(|&x| (x as f64) * (x as f64)).sum::<f64>().sqrt()
}

/// Euclidean distance between two equal-length slices.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn l2_distance_slice(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "l2_distance of mismatched lengths");
    let _k = kcount::scope(Kernel::Norm, 3 * a.len() as u64, 8 * a.len() as u64);
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = x as f64 - y as f64;
            d * d
        })
        .sum::<f64>()
        .sqrt()
}

/// Whether every coordinate is finite (no NaN / ±inf).
pub fn all_finite(xs: &[f32]) -> bool {
    xs.iter().all(|x| x.is_finite())
}

/// Symmetric matrix of pairwise squared Euclidean distances between `n`
/// equal-length vectors, as a flat row-major `n * n` buffer. Squared
/// distances are what Krum scores sum, so the square root is left to
/// callers that need true distances.
///
/// # Panics
/// Panics if the vectors differ in length.
pub fn pairwise_sq_distances(vectors: &[&[f32]]) -> Vec<f64> {
    let n = vectors.len();
    let mut out = vec![0.0f64; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let d = l2_distance_slice(vectors[i], vectors[j]);
            let sq = d * d;
            out[i * n + j] = sq;
            out[j * n + i] = sq;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norm_and_distance_agree_with_hand_values() {
        assert_eq!(l2_norm_slice(&[3.0, 4.0]), 5.0);
        assert_eq!(l2_norm_slice(&[]), 0.0);
        assert_eq!(l2_distance_slice(&[1.0, 1.0], &[4.0, 5.0]), 5.0);
        assert_eq!(l2_distance_slice(&[2.0], &[2.0]), 0.0);
    }

    #[test]
    fn distance_is_norm_of_difference() {
        let a = [0.5f32, -1.0, 2.0, 0.0];
        let b = [1.5f32, 1.0, -2.0, 3.0];
        let diff: Vec<f32> = a.iter().zip(&b).map(|(x, y)| x - y).collect();
        let d = l2_distance_slice(&a, &b);
        assert!((d - l2_norm_slice(&diff)).abs() < 1e-9);
    }

    #[test]
    fn finiteness_detector() {
        assert!(all_finite(&[0.0, -1.0, 1e30]));
        assert!(!all_finite(&[0.0, f32::NAN]));
        assert!(!all_finite(&[f32::INFINITY]));
        assert!(!all_finite(&[f32::NEG_INFINITY, 1.0]));
        assert!(all_finite(&[]));
    }

    #[test]
    fn pairwise_matrix_is_symmetric_with_zero_diagonal() {
        let vs: Vec<Vec<f32>> = vec![vec![0.0, 0.0], vec![3.0, 4.0], vec![-1.0, 1.0]];
        let refs: Vec<&[f32]> = vs.iter().map(|v| v.as_slice()).collect();
        let m = pairwise_sq_distances(&refs);
        let n = 3;
        for i in 0..n {
            assert_eq!(m[i * n + i], 0.0);
            for j in 0..n {
                assert_eq!(m[i * n + j], m[j * n + i]);
            }
        }
        // |(0,0) - (3,4)|^2 = 25.
        assert!((m[1] - 25.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "mismatched")]
    fn distance_rejects_length_mismatch() {
        let _ = l2_distance_slice(&[1.0], &[1.0, 2.0]);
    }
}
