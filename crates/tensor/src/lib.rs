//! Row-major `f32` tensors and the numeric kernels used by every other
//! FedMigr substrate.
//!
//! The tensor type here is deliberately small: dense row-major storage, a
//! dynamic shape, and exactly the operations the neural-network substrate
//! needs (elementwise arithmetic, 2-D matrix multiply, reductions, stable
//! softmax). There is no autograd at this level — gradients are computed by
//! the layers in `fedmigr-nn`, which own both the forward caches and the
//! backward kernels.
//!
//! # Example
//!
//! ```
//! use fedmigr_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
//! let b = Tensor::ones(&[3, 2]);
//! let c = a.matmul(&b);
//! assert_eq!(c.shape(), &[2, 2]);
//! assert_eq!(c.data()[0], 6.0);
//! ```

mod init;
pub mod kcount;
mod norms;
mod ops;
mod stats;
mod tensor;

pub use init::{he_std, xavier_std};
pub use norms::{all_finite, l2_distance_slice, l2_norm_slice, pairwise_sq_distances};
pub use stats::{argmax_slice, log_softmax_rows, softmax_rows};
pub use tensor::Tensor;
