//! Deterministic event-driven flow simulator.
//!
//! The lockstep accounting in [`crate::transfer_time`] prices every
//! transfer at `bytes / bandwidth` as if it had the wire to itself. This
//! module replaces that with a fluid *flow* model: concurrent transfers
//! share link capacity under a configurable queueing discipline, and every
//! transfer runs a small transport state machine — segments are lost to
//! burst loss and retransmitted, an AIMD congestion window throttles the
//! send rate, and a flow that gets no capacity (downed or flapping link)
//! arms a retransmission timeout with bounded exponential backoff before
//! giving up. A transfer's completion time therefore depends on what else
//! is on the wire, not on a fixed nominal latency.
//!
//! The simulator is a *pure* function of its inputs: capacities, flows and
//! the loss seed. Loss rolls use the same SplitMix64 hash family as
//! [`crate::FaultModel`] (no shared RNG stream), event ties are broken by
//! flow index, and time only advances to explicitly computed event times —
//! so the same setup replays bit-identically, which the runner's
//! determinism contract relies on.

use serde::{Deserialize, Serialize};

use crate::fault::hash_unit;

/// How concurrent flows share a link's capacity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueueDiscipline {
    /// Max-min fair share: capacity is split evenly among bottlenecked
    /// flows (progressive filling), the fluid limit of per-flow fair
    /// queueing.
    #[default]
    FairShare,
    /// Per-link FIFO: the oldest active flow on a link holds it until done;
    /// later arrivals queue behind it.
    Fifo,
}

/// Tuning of the flow transport. [`FlowConfig::standard`] matches a small
/// TCP-like profile sized for model-scale transfers (hundreds of KB) on
/// megabyte-per-second edge links.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FlowConfig {
    /// Queueing discipline of shared links.
    pub discipline: QueueDiscipline,
    /// Segment size in bytes — the granularity of loss, retransmission and
    /// congestion-window accounting.
    pub segment_bytes: u64,
    /// Initial congestion window in segments.
    pub init_cwnd: u32,
    /// Slow-start threshold in segments; below it the window grows by one
    /// segment per delivered segment, above it by roughly one per window.
    pub ssthresh: u32,
    /// Congestion-window ceiling in segments.
    pub max_cwnd: u32,
    /// Round-trip-time floor in seconds; the window caps the send rate at
    /// `cwnd * segment_bytes / max(min_rtt, 2 * path_latency)`.
    pub min_rtt: f64,
    /// Retransmission timeout armed when a flow receives no capacity, in
    /// seconds.
    pub base_rto: f64,
    /// Multiplicative RTO growth per consecutive timeout (>= 1).
    pub rto_backoff: f64,
    /// Consecutive timeouts tolerated before the flow fails. Bounds how
    /// long a flow can stall on a dead link, so rounds never hang.
    pub max_timeouts: u32,
    /// Per-round upload deadline as a multiple of the *median* completed
    /// upload time; uploads finishing later are folded in as stale on a
    /// later round. `f64::INFINITY` disables the deadline.
    pub deadline_factor: f64,
    /// Seed of the per-segment loss schedule.
    pub seed: u64,
}

impl FlowConfig {
    /// The standard profile: fair-share links, 16 KiB segments, a 4-segment
    /// initial window, 10 ms RTT floor, 250 ms base RTO doubling up to five
    /// timeouts, and a 3x-median upload deadline.
    pub fn standard(seed: u64) -> Self {
        Self {
            discipline: QueueDiscipline::FairShare,
            segment_bytes: 16 * 1024,
            init_cwnd: 4,
            ssthresh: 32,
            max_cwnd: 256,
            min_rtt: 0.01,
            base_rto: 0.25,
            rto_backoff: 2.0,
            max_timeouts: 5,
            deadline_factor: 3.0,
            seed,
        }
    }

    fn validate(&self) {
        assert!(self.segment_bytes > 0, "segment size must be positive");
        assert!(self.init_cwnd >= 1 && self.max_cwnd >= self.init_cwnd, "bad cwnd bounds");
        assert!(self.min_rtt > 0.0 && self.base_rto > 0.0, "rtt/rto must be positive");
        assert!(self.rto_backoff >= 1.0, "rto backoff must be >= 1");
        assert!(self.deadline_factor > 0.0, "deadline factor must be positive");
    }
}

/// Handle to a link added to a [`FlowSim`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkId(usize);

/// Handle to a flow added to a [`FlowSim`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlowId(usize);

/// Result of one flow after [`FlowSim::run`]. Byte accounting satisfies
/// `wire_bytes == delivered_bytes + retransmit_bytes` exactly.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FlowOutcome {
    /// Whether the whole payload was delivered.
    pub completed: bool,
    /// Completion (or failure) time in seconds from simulation start.
    pub finish: f64,
    /// Payload size requested.
    pub payload_bytes: u64,
    /// Payload bytes actually delivered (equals `payload_bytes` when
    /// completed; partial progress when failed).
    pub delivered_bytes: u64,
    /// Bytes put on the wire, including retransmitted segments.
    pub wire_bytes: u64,
    /// Bytes burned by retransmissions alone.
    pub retransmit_bytes: u64,
    /// Number of lost-and-retransmitted segments.
    pub retransmits: u64,
    /// Number of retransmission timeouts (stalls with no capacity).
    pub timeouts: u64,
    /// Seconds spent queued with zero allocated rate.
    pub queue_delay: f64,
}

#[derive(Clone, Copy, Debug, PartialEq)]
enum FlowState {
    Running,
    Backoff { until: f64 },
    Done { at: f64 },
    Failed { at: f64 },
}

struct Link {
    capacity: f64,
    loss: f64,
    latency: f64,
    /// `Some((period, phase))` — up during the first half of each cycle.
    flap: Option<(f64, f64)>,
    served_bytes: f64,
}

impl Link {
    fn up_at(&self, t: f64) -> bool {
        match self.flap {
            None => true,
            Some((period, phase)) => ((t + phase) % period) < period / 2.0,
        }
    }

    /// Next flap boundary strictly after `t`, if the link flaps.
    fn next_toggle(&self, t: f64) -> Option<f64> {
        let (period, phase) = self.flap?;
        let half = period / 2.0;
        let pos = (t + phase) % half;
        Some(t + (half - pos).max(half * 1e-9))
    }
}

struct Flow {
    path: Vec<usize>,
    bytes: u64,
    remaining: f64,
    seg_size: f64,
    seg_sent: f64,
    tx_counter: u64,
    state: FlowState,
    cwnd: f64,
    ssthresh: f64,
    rto: f64,
    strikes: u32,
    stall_since: Option<f64>,
    retransmits: u64,
    timeouts: u64,
    wire_bytes: f64,
    retransmit_bytes: f64,
    queue_delay: f64,
    rtt: f64,
    rate: f64,
}

const EPS_BYTES: f64 = 1e-6;
const EPS_RATE: f64 = 1e-6;
const EPS_TIME: f64 = 1e-9;
/// Hard horizon: any flow still in flight this far in is declared failed.
/// Unreachable in practice (timeout strikes fail flows much earlier); this
/// is the belt-and-braces guarantee that rounds terminate.
const HORIZON_S: f64 = 1e7;
const TAG_FLOW_LOSS: u64 = 101;

/// The event-driven simulator. Build one per communication phase: add the
/// links, add the flows, [`FlowSim::run`], then read the outcomes.
pub struct FlowSim {
    cfg: FlowConfig,
    links: Vec<Link>,
    flows: Vec<Flow>,
    now: f64,
}

impl FlowSim {
    /// An empty simulation at time zero.
    pub fn new(cfg: FlowConfig) -> Self {
        cfg.validate();
        Self { cfg, links: Vec::new(), flows: Vec::new(), now: 0.0 }
    }

    /// Adds a link. `capacity` may be zero to model a hard outage (flows on
    /// it stall into timeouts and fail); `loss` is the per-segment loss
    /// rate in `[0, 1)`; `flap` is `Some((period, phase))` for a flapping
    /// link.
    pub fn add_link(
        &mut self,
        capacity: f64,
        loss: f64,
        latency: f64,
        flap: Option<(f64, f64)>,
    ) -> LinkId {
        assert!(capacity >= 0.0 && capacity.is_finite(), "bad capacity {capacity}");
        assert!((0.0..1.0).contains(&loss), "loss must be in [0, 1)");
        assert!(latency >= 0.0, "latency must be non-negative");
        if let Some((period, phase)) = flap {
            assert!(period > 0.0 && (0.0..=period).contains(&phase), "bad flap cycle");
        }
        self.links.push(Link { capacity, loss, latency, flap, served_bytes: 0.0 });
        LinkId(self.links.len() - 1)
    }

    /// Adds a flow of `bytes` across `path` (all links traversed in
    /// series; the slowest governs).
    pub fn add_flow(&mut self, path: &[LinkId], bytes: u64) -> FlowId {
        assert!(!path.is_empty(), "flow needs at least one link");
        let path: Vec<usize> = path.iter().map(|l| l.0).collect();
        let latency: f64 = path.iter().map(|&l| self.links[l].latency).sum();
        let cfg = &self.cfg;
        let seg = (cfg.segment_bytes as f64).min((bytes as f64).max(1.0));
        self.flows.push(Flow {
            path,
            bytes,
            remaining: bytes as f64,
            seg_size: seg,
            seg_sent: 0.0,
            tx_counter: 0,
            state: if bytes == 0 { FlowState::Done { at: 0.0 } } else { FlowState::Running },
            cwnd: cfg.init_cwnd as f64,
            ssthresh: cfg.ssthresh as f64,
            rto: cfg.base_rto,
            strikes: 0,
            stall_since: None,
            retransmits: 0,
            timeouts: 0,
            wire_bytes: 0.0,
            retransmit_bytes: 0.0,
            queue_delay: 0.0,
            rtt: cfg.min_rtt.max(2.0 * latency),
            rate: 0.0,
        });
        FlowId(self.flows.len() - 1)
    }

    /// Runs every flow to completion or failure. Guaranteed to terminate:
    /// stalls are bounded by the timeout-strike budget and everything else
    /// makes byte progress.
    pub fn run(&mut self) {
        while self.flows.iter().any(|f| !is_settled(f.state)) {
            self.assign_rates();
            let t_next = self.next_event_time();
            debug_assert!(t_next >= self.now - EPS_TIME, "event time went backwards");
            let dt = (t_next - self.now).max(0.0);
            self.integrate(dt);
            self.now = t_next;
            self.fire_events();
            if self.now > HORIZON_S {
                for f in &mut self.flows {
                    if !is_settled(f.state) {
                        f.state = FlowState::Failed { at: self.now };
                    }
                }
            }
        }
    }

    /// Per-flow rate cap imposed by the congestion window.
    fn cwnd_cap(&self, f: &Flow) -> f64 {
        f.cwnd * self.cfg.segment_bytes as f64 / f.rtt
    }

    /// Computes the instantaneous rate of every flow under the configured
    /// discipline, and starts/clears stall timers accordingly.
    fn assign_rates(&mut self) {
        let caps: Vec<f64> =
            self.links.iter().map(|l| if l.up_at(self.now) { l.capacity } else { 0.0 }).collect();
        let n = self.flows.len();
        let mut rates = vec![0.0f64; n];
        let running: Vec<usize> =
            (0..n).filter(|&i| matches!(self.flows[i].state, FlowState::Running)).collect();
        match self.cfg.discipline {
            QueueDiscipline::FairShare => {
                let mut unfrozen: Vec<usize> = running
                    .iter()
                    .copied()
                    .filter(|&i| self.flows[i].path.iter().all(|&l| caps[l] > EPS_RATE))
                    .collect();
                let mut used = vec![0.0f64; self.links.len()];
                while !unfrozen.is_empty() {
                    let mut crossing = vec![0usize; self.links.len()];
                    for &i in &unfrozen {
                        for &l in &self.flows[i].path {
                            crossing[l] += 1;
                        }
                    }
                    let mut delta = f64::INFINITY;
                    for (l, &c) in crossing.iter().enumerate() {
                        if c > 0 {
                            delta = delta.min((caps[l] - used[l]).max(0.0) / c as f64);
                        }
                    }
                    for &i in &unfrozen {
                        delta = delta.min((self.cwnd_cap(&self.flows[i]) - rates[i]).max(0.0));
                    }
                    for &i in &unfrozen {
                        rates[i] += delta;
                        for &l in &self.flows[i].path {
                            used[l] += delta;
                        }
                    }
                    // Freeze flows that hit their window cap or a saturated
                    // link; at least one freezes per pass, so this halts.
                    let before = unfrozen.len();
                    unfrozen.retain(|&i| {
                        rates[i] + EPS_RATE < self.cwnd_cap(&self.flows[i])
                            && self.flows[i].path.iter().all(|&l| used[l] + EPS_RATE < caps[l])
                    });
                    if unfrozen.len() == before {
                        break;
                    }
                }
            }
            QueueDiscipline::Fifo => {
                // A flow holds a link iff no lower-indexed running flow
                // shares it; index order is admission order, and the
                // total order keeps head-of-line globally consistent.
                for &i in &running {
                    let blocked = running
                        .iter()
                        .any(|&j| j < i && shares_link(&self.flows[i].path, &self.flows[j].path));
                    if blocked {
                        continue;
                    }
                    let link_cap =
                        self.flows[i].path.iter().map(|&l| caps[l]).fold(f64::INFINITY, f64::min);
                    rates[i] = link_cap.min(self.cwnd_cap(&self.flows[i]));
                }
            }
        }
        for (i, f) in self.flows.iter_mut().enumerate() {
            f.rate = rates[i];
            if matches!(f.state, FlowState::Running) {
                if f.rate > EPS_RATE {
                    f.stall_since = None;
                } else if f.path.iter().any(|&l| caps[l] <= EPS_RATE) {
                    // No capacity at all on the path (outage or flap-down):
                    // arm the retransmission timeout.
                    if f.stall_since.is_none() {
                        f.stall_since = Some(self.now);
                    }
                } else {
                    // Queued behind other flows on a live link: waiting is
                    // queue delay, not a timeout — the queue drains via the
                    // head flow's events.
                    f.stall_since = None;
                }
            }
        }
    }

    fn next_event_time(&self) -> f64 {
        let mut t = f64::INFINITY;
        let mut any_active_link = vec![false; self.links.len()];
        for f in &self.flows {
            match f.state {
                FlowState::Running => {
                    for &l in &f.path {
                        any_active_link[l] = true;
                    }
                    if f.rate > EPS_RATE {
                        t = t.min(self.now + (f.seg_size - f.seg_sent).max(0.0) / f.rate);
                    } else if let Some(s) = f.stall_since {
                        t = t.min(s + f.rto);
                    }
                }
                FlowState::Backoff { until } => t = t.min(until),
                _ => {}
            }
        }
        for (l, link) in self.links.iter().enumerate() {
            if any_active_link[l] {
                if let Some(toggle) = link.next_toggle(self.now) {
                    t = t.min(toggle);
                }
            }
        }
        // All flows settled is handled by the caller; an active flow always
        // schedules either a segment boundary, an RTO or a backoff expiry.
        debug_assert!(t.is_finite(), "no next event for an active simulation");
        t
    }

    /// Advances byte progress and accounting across `[now, now + dt)`.
    fn integrate(&mut self, dt: f64) {
        if dt <= 0.0 {
            return;
        }
        for f in &mut self.flows {
            if !matches!(f.state, FlowState::Running) {
                continue;
            }
            if f.rate > EPS_RATE {
                f.seg_sent = (f.seg_sent + f.rate * dt).min(f.seg_size);
                for &l in &f.path {
                    self.links[l].served_bytes += f.rate * dt;
                }
            } else {
                f.queue_delay += dt;
            }
        }
    }

    fn fire_events(&mut self) {
        let now = self.now;
        for (i, f) in self.flows.iter_mut().enumerate() {
            match f.state {
                FlowState::Running if f.rate > EPS_RATE && f.seg_size - f.seg_sent <= EPS_BYTES => {
                    f.wire_bytes += f.seg_size;
                    let lost = hash_unit(self.cfg.seed, TAG_FLOW_LOSS, i as u64, f.tx_counter, 0)
                        < path_loss(&f.path, &self.links);
                    f.tx_counter += 1;
                    if lost {
                        f.retransmits += 1;
                        f.retransmit_bytes += f.seg_size;
                        f.seg_sent = 0.0;
                        // Multiplicative decrease; keep at least one
                        // segment in flight.
                        f.cwnd = (f.cwnd / 2.0).max(1.0);
                        f.ssthresh = f.cwnd;
                    } else {
                        f.remaining -= f.seg_size;
                        f.seg_sent = 0.0;
                        f.strikes = 0;
                        f.rto = self.cfg.base_rto;
                        if f.cwnd < f.ssthresh {
                            f.cwnd += 1.0;
                        } else {
                            f.cwnd += 1.0 / f.cwnd;
                        }
                        f.cwnd = f.cwnd.min(self.cfg.max_cwnd as f64);
                        if f.remaining <= EPS_BYTES {
                            f.remaining = 0.0;
                            f.state = FlowState::Done { at: now };
                        } else {
                            f.seg_size = (self.cfg.segment_bytes as f64).min(f.remaining);
                        }
                    }
                }
                FlowState::Running => {
                    if let Some(s) = f.stall_since {
                        if now >= s + f.rto - EPS_TIME {
                            f.timeouts += 1;
                            f.strikes += 1;
                            f.stall_since = None;
                            if f.strikes > self.cfg.max_timeouts {
                                f.state = FlowState::Failed { at: now };
                            } else {
                                f.state = FlowState::Backoff { until: now + f.rto };
                                f.rto *= self.cfg.rto_backoff;
                                f.cwnd = self.cfg.init_cwnd as f64;
                                f.seg_sent = 0.0;
                            }
                        }
                    }
                }
                FlowState::Backoff { until } if now >= until - EPS_TIME => {
                    f.state = FlowState::Running;
                }
                _ => {}
            }
        }
    }

    /// Outcome of flow `id`; call after [`FlowSim::run`].
    pub fn outcome(&self, id: FlowId) -> FlowOutcome {
        let f = &self.flows[id.0];
        let (completed, finish) = match f.state {
            FlowState::Done { at } => (true, at),
            FlowState::Failed { at } => (false, at),
            _ => panic!("outcome read before run() settled the flow"),
        };
        FlowOutcome {
            completed,
            finish,
            payload_bytes: f.bytes,
            delivered_bytes: (f.bytes as f64 - f.remaining).round() as u64,
            wire_bytes: f.wire_bytes.round() as u64,
            retransmit_bytes: f.retransmit_bytes.round() as u64,
            retransmits: f.retransmits,
            timeouts: f.timeouts,
            queue_delay: f.queue_delay,
        }
    }

    /// Outcomes of every flow, in admission order.
    pub fn outcomes(&self) -> Vec<FlowOutcome> {
        (0..self.flows.len()).map(|i| self.outcome(FlowId(i))).collect()
    }

    /// Latest finish (or failure) time across all flows.
    pub fn makespan(&self) -> f64 {
        self.flows
            .iter()
            .map(|f| match f.state {
                FlowState::Done { at } | FlowState::Failed { at } => at,
                _ => panic!("makespan read before run() settled every flow"),
            })
            .fold(0.0, f64::max)
    }

    /// Mean utilization across links that carried any traffic: served bytes
    /// over `capacity * makespan`. Zero for an empty or instant simulation.
    pub fn mean_link_utilization(&self) -> f64 {
        let span = self.makespan();
        if span <= 0.0 {
            return 0.0;
        }
        let utils: Vec<f64> = self
            .links
            .iter()
            .filter(|l| l.capacity > 0.0 && l.served_bytes > 0.0)
            .map(|l| (l.served_bytes / (l.capacity * span)).min(1.0))
            .collect();
        if utils.is_empty() {
            0.0
        } else {
            utils.iter().sum::<f64>() / utils.len() as f64
        }
    }
}

fn is_settled(s: FlowState) -> bool {
    matches!(s, FlowState::Done { .. } | FlowState::Failed { .. })
}

fn shares_link(a: &[usize], b: &[usize]) -> bool {
    a.iter().any(|l| b.contains(l))
}

fn path_loss(path: &[usize], links: &[Link]) -> f64 {
    path.iter().map(|&l| links[l].loss).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> FlowConfig {
        FlowConfig::standard(11)
    }

    fn run_one(capacity: f64, bytes: u64) -> (FlowOutcome, f64) {
        let mut sim = FlowSim::new(cfg());
        let l = sim.add_link(capacity, 0.0, 0.0, None);
        let f = sim.add_flow(&[l], bytes);
        sim.run();
        (sim.outcome(f), sim.makespan())
    }

    #[test]
    fn lone_flow_approaches_fluid_time() {
        let (o, span) = run_one(1.0e6, 1_000_000);
        assert!(o.completed);
        assert_eq!(o.delivered_bytes, 1_000_000);
        assert_eq!(o.wire_bytes, 1_000_000);
        assert_eq!(o.retransmits, 0);
        // Fluid time is 1 s; the AIMD ramp adds a little.
        assert!(o.finish >= 1.0 - 1e-9 && o.finish < 2.0, "finish {}", o.finish);
        assert_eq!(span, o.finish);
    }

    #[test]
    fn fair_share_splits_capacity_evenly() {
        let mut sim = FlowSim::new(cfg());
        let l = sim.add_link(1.0e6, 0.0, 0.0, None);
        let a = sim.add_flow(&[l], 500_000);
        let b = sim.add_flow(&[l], 500_000);
        sim.run();
        let (oa, ob) = (sim.outcome(a), sim.outcome(b));
        assert!(oa.completed && ob.completed);
        // Both contend for the whole run: each sees ~half the link.
        assert!((oa.finish - ob.finish).abs() < 0.05, "{} vs {}", oa.finish, ob.finish);
        assert!(oa.finish > 0.9, "contention must slow both flows: {}", oa.finish);
    }

    #[test]
    fn fifo_serves_in_admission_order() {
        let mut c = cfg();
        c.discipline = QueueDiscipline::Fifo;
        let mut sim = FlowSim::new(c);
        let l = sim.add_link(1.0e6, 0.0, 0.0, None);
        let a = sim.add_flow(&[l], 500_000);
        let b = sim.add_flow(&[l], 500_000);
        sim.run();
        let (oa, ob) = (sim.outcome(a), sim.outcome(b));
        assert!(oa.finish < ob.finish, "head of line finishes first");
        assert!(ob.queue_delay > 0.3, "the queued flow waits: {}", ob.queue_delay);
    }

    #[test]
    fn loss_burns_wire_bytes_but_conserves_accounting() {
        let mut sim = FlowSim::new(cfg());
        let l = sim.add_link(1.0e6, 0.3, 0.0, None);
        let f = sim.add_flow(&[l], 1_000_000);
        sim.run();
        let o = sim.outcome(f);
        assert!(o.completed);
        assert!(o.retransmits > 0, "30% loss must cost retransmits");
        assert_eq!(o.wire_bytes, o.delivered_bytes + o.retransmit_bytes);
        let (clean, _) = run_one(1.0e6, 1_000_000);
        assert!(o.finish > clean.finish, "loss must slow the flow down");
    }

    #[test]
    fn dead_link_fails_fast_instead_of_hanging() {
        let (o, span) = run_one(0.0, 1_000_000);
        assert!(!o.completed);
        assert!(o.timeouts as usize > 0);
        assert_eq!(o.delivered_bytes, 0);
        // Strikes bound the stall: base 0.25 s doubling six times.
        assert!(span < 60.0, "failure must be prompt, took {span}");
    }

    #[test]
    fn flapping_link_stalls_then_recovers() {
        let mut sim = FlowSim::new(cfg());
        // Up for [0, 0.5) of every 1 s cycle; 1.2 MB at 1 MB/s must cross
        // at least one down phase.
        let l = sim.add_link(1.0e6, 0.0, 0.0, Some((1.0, 0.0)));
        let f = sim.add_flow(&[l], 1_200_000);
        sim.run();
        let o = sim.outcome(f);
        assert!(o.completed, "half-duty flapping still drains the flow");
        assert!(o.timeouts > 0, "the down phase must trip the stall timer");
        let (clean, _) = run_one(1.0e6, 1_200_000);
        assert!(
            o.finish > clean.finish + 0.4,
            "down-time must show up in the finish time: {} vs {}",
            o.finish,
            clean.finish
        );
    }

    #[test]
    fn outcomes_are_bit_deterministic() {
        let build = || {
            let mut sim = FlowSim::new(cfg());
            let wan = sim.add_link(2.0e6, 0.2, 0.01, None);
            let lan = sim.add_link(1.0e7, 0.0, 0.0, Some((0.5, 0.1)));
            for i in 0..5 {
                let path = if i % 2 == 0 { vec![wan] } else { vec![lan, wan] };
                sim.add_flow(&path, 300_000 + i * 10_000);
            }
            sim.run();
            sim.outcomes()
        };
        let (a, b) = (build(), build());
        assert_eq!(a, b, "same setup must replay bit-identically");
        assert!(a.iter().all(|o| o.completed));
    }

    #[test]
    fn saturation_starves_no_flow() {
        let mut sim = FlowSim::new(cfg());
        let l = sim.add_link(1.0e6, 0.0, 0.0, None);
        let ids: Vec<FlowId> = (0..16).map(|_| sim.add_flow(&[l], 200_000)).collect();
        sim.run();
        for id in ids {
            assert!(sim.outcome(id).completed, "every flow must drain under saturation");
        }
        assert!(sim.mean_link_utilization() > 0.9, "{}", sim.mean_link_utilization());
    }

    #[test]
    fn two_hop_flows_are_governed_by_the_bottleneck() {
        let mut sim = FlowSim::new(cfg());
        let fast = sim.add_link(1.0e7, 0.0, 0.0, None);
        let slow = sim.add_link(1.0e6, 0.0, 0.0, None);
        let f = sim.add_flow(&[fast, slow], 1_000_000);
        sim.run();
        let o = sim.outcome(f);
        assert!(o.completed);
        assert!(o.finish >= 1.0 - 1e-9, "bottleneck link governs: {}", o.finish);
    }

    #[test]
    fn zero_byte_flow_completes_instantly() {
        let (o, span) = run_one(1.0e6, 0);
        assert!(o.completed);
        assert_eq!(span, 0.0);
        assert_eq!(o.wire_bytes, 0);
    }
}
