//! Deterministic event-driven flow simulator.
//!
//! The lockstep accounting in [`crate::transfer_time`] prices every
//! transfer at `bytes / bandwidth` as if it had the wire to itself. This
//! module replaces that with a fluid *flow* model: concurrent transfers
//! share link capacity under a configurable queueing discipline, and every
//! transfer runs a small transport state machine — segments are lost to
//! burst loss and retransmitted, an AIMD congestion window throttles the
//! send rate, and a flow that gets no capacity (downed or flapping link)
//! arms a retransmission timeout with bounded exponential backoff before
//! giving up. A transfer's completion time therefore depends on what else
//! is on the wire, not on a fixed nominal latency.
//!
//! The simulator is a *pure* function of its inputs: capacities, flows and
//! the loss seed. Loss rolls use the same SplitMix64 hash family as
//! [`crate::FaultModel`] (no shared RNG stream), event ties are broken by
//! flow index, and time only advances to explicitly computed event times —
//! so the same setup replays bit-identically, which the runner's
//! determinism contract relies on.

use serde::{Deserialize, Serialize};

use crate::fault::hash_unit;

/// How concurrent flows share a link's capacity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueueDiscipline {
    /// Max-min fair share: capacity is split evenly among bottlenecked
    /// flows (progressive filling), the fluid limit of per-flow fair
    /// queueing.
    #[default]
    FairShare,
    /// Per-link FIFO: the oldest active flow on a link holds it until done;
    /// later arrivals queue behind it.
    Fifo,
}

/// Tuning of the flow transport. [`FlowConfig::standard`] matches a small
/// TCP-like profile sized for model-scale transfers (hundreds of KB) on
/// megabyte-per-second edge links.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FlowConfig {
    /// Queueing discipline of shared links.
    pub discipline: QueueDiscipline,
    /// Segment size in bytes — the granularity of loss, retransmission and
    /// congestion-window accounting.
    pub segment_bytes: u64,
    /// Initial congestion window in segments.
    pub init_cwnd: u32,
    /// Slow-start threshold in segments; below it the window grows by one
    /// segment per delivered segment, above it by roughly one per window.
    pub ssthresh: u32,
    /// Congestion-window ceiling in segments.
    pub max_cwnd: u32,
    /// Round-trip-time floor in seconds; the window caps the send rate at
    /// `cwnd * segment_bytes / max(min_rtt, 2 * path_latency)`.
    pub min_rtt: f64,
    /// Retransmission timeout armed when a flow receives no capacity, in
    /// seconds.
    pub base_rto: f64,
    /// Multiplicative RTO growth per consecutive timeout (>= 1).
    pub rto_backoff: f64,
    /// Consecutive timeouts tolerated before the flow fails. Bounds how
    /// long a flow can stall on a dead link, so rounds never hang.
    pub max_timeouts: u32,
    /// Per-round upload deadline as a multiple of the *median* completed
    /// upload time; uploads finishing later are folded in as stale on a
    /// later round. `f64::INFINITY` disables the deadline.
    pub deadline_factor: f64,
    /// Seed of the per-segment loss schedule.
    pub seed: u64,
}

impl FlowConfig {
    /// The standard profile: fair-share links, 16 KiB segments, a 4-segment
    /// initial window, 10 ms RTT floor, 250 ms base RTO doubling up to five
    /// timeouts, and a 3x-median upload deadline.
    pub fn standard(seed: u64) -> Self {
        Self {
            discipline: QueueDiscipline::FairShare,
            segment_bytes: 16 * 1024,
            init_cwnd: 4,
            ssthresh: 32,
            max_cwnd: 256,
            min_rtt: 0.01,
            base_rto: 0.25,
            rto_backoff: 2.0,
            max_timeouts: 5,
            deadline_factor: 3.0,
            seed,
        }
    }

    fn validate(&self) {
        assert!(self.segment_bytes > 0, "segment size must be positive");
        assert!(self.init_cwnd >= 1 && self.max_cwnd >= self.init_cwnd, "bad cwnd bounds");
        assert!(self.min_rtt > 0.0 && self.base_rto > 0.0, "rtt/rto must be positive");
        assert!(self.rto_backoff >= 1.0, "rto backoff must be >= 1");
        assert!(self.deadline_factor > 0.0, "deadline factor must be positive");
    }
}

/// Handle to a link added to a [`FlowSim`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkId(usize);

impl LinkId {
    /// Admission-order index of the link; matches [`LinkSeries::link`].
    pub fn index(&self) -> usize {
        self.0
    }
}

/// Handle to a flow added to a [`FlowSim`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlowId(usize);

impl FlowId {
    /// Admission-order index of the flow; matches [`FlowEvent::flow`].
    pub fn index(&self) -> usize {
        self.0
    }
}

/// Result of one flow after [`FlowSim::run`]. Byte accounting satisfies
/// `wire_bytes == delivered_bytes + retransmit_bytes` exactly.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FlowOutcome {
    /// Whether the whole payload was delivered.
    pub completed: bool,
    /// Completion (or failure) time in seconds from simulation start.
    pub finish: f64,
    /// Payload size requested.
    pub payload_bytes: u64,
    /// Payload bytes actually delivered (equals `payload_bytes` when
    /// completed; partial progress when failed).
    pub delivered_bytes: u64,
    /// Bytes put on the wire, including retransmitted segments.
    pub wire_bytes: u64,
    /// Bytes burned by retransmissions alone.
    pub retransmit_bytes: u64,
    /// Number of lost-and-retransmitted segments.
    pub retransmits: u64,
    /// Number of retransmission timeouts (stalls with no capacity).
    pub timeouts: u64,
    /// Seconds spent queued with zero allocated rate.
    pub queue_delay: f64,
}

#[derive(Clone, Copy, Debug, PartialEq)]
enum FlowState {
    Running,
    Backoff { until: f64 },
    Done { at: f64 },
    Failed { at: f64 },
}

struct Link {
    capacity: f64,
    loss: f64,
    latency: f64,
    /// `Some((period, phase))` — up during the first half of each cycle.
    flap: Option<(f64, f64)>,
    served_bytes: f64,
}

impl Link {
    fn up_at(&self, t: f64) -> bool {
        match self.flap {
            None => true,
            Some((period, phase)) => ((t + phase) % period) < period / 2.0,
        }
    }

    /// Next flap boundary strictly after `t`, if the link flaps.
    fn next_toggle(&self, t: f64) -> Option<f64> {
        let (period, phase) = self.flap?;
        let half = period / 2.0;
        let pos = (t + phase) % half;
        Some(t + (half - pos).max(half * 1e-9))
    }
}

struct Flow {
    path: Vec<usize>,
    bytes: u64,
    remaining: f64,
    seg_size: f64,
    seg_sent: f64,
    tx_counter: u64,
    state: FlowState,
    cwnd: f64,
    ssthresh: f64,
    rto: f64,
    strikes: u32,
    stall_since: Option<f64>,
    retransmits: u64,
    timeouts: u64,
    wire_bytes: f64,
    retransmit_bytes: f64,
    queue_delay: f64,
    rtt: f64,
    rate: f64,
}

/// One traced flow lifecycle event. Every event carries the flow's
/// congestion window at emission time, so the event stream doubles as the
/// sampled cwnd trajectory (dense around losses and timeouts, sparse on
/// smooth stretches — [`FlowEventKind::Cwnd`] fills integer crossings).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FlowEvent {
    /// Simulation time of the event, seconds from phase start.
    pub t: f64,
    /// Flow index in admission order.
    pub flow: usize,
    /// What happened.
    pub kind: FlowEventKind,
    /// Congestion window (segments) right after the event applied.
    pub cwnd: f64,
}

/// The traced flow event taxonomy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FlowEventKind {
    /// Flow admitted with this payload.
    Start {
        /// Payload bytes requested.
        bytes: u64,
    },
    /// Allocated send rate changed to this value (bytes/second).
    Rate {
        /// New instantaneous rate.
        rate: f64,
    },
    /// A segment was lost and will be retransmitted (window halved).
    Retransmit,
    /// Retransmission timeout fired after a capacity stall.
    Timeout {
        /// Consecutive strike count after this timeout.
        strikes: u32,
    },
    /// Backoff expired; the flow resumed sending.
    BackoffEnd,
    /// Congestion window crossed an integer boundary while growing.
    Cwnd,
    /// Whole payload delivered.
    Done,
    /// Flow gave up (strike budget or horizon).
    Failed,
}

impl FlowEventKind {
    /// Stable lower-case label used in timeline exports.
    pub fn name(self) -> &'static str {
        match self {
            FlowEventKind::Start { .. } => "start",
            FlowEventKind::Rate { .. } => "rate",
            FlowEventKind::Retransmit => "retransmit",
            FlowEventKind::Timeout { .. } => "timeout",
            FlowEventKind::BackoffEnd => "backoff_end",
            FlowEventKind::Cwnd => "cwnd",
            FlowEventKind::Done => "done",
            FlowEventKind::Failed => "failed",
        }
    }
}

/// Step-function time series for one link: instantaneous utilization
/// (allocated rate over capacity) and queue depth (running flows on the
/// link holding zero rate), sampled at rate-assignment boundaries and
/// coalesced so consecutive identical samples collapse into one.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LinkSeries {
    /// Link index in admission order.
    pub link: usize,
    /// Sample times, ascending.
    pub t: Vec<f64>,
    /// Utilization in `[0, 1]` at each sample time.
    pub util: Vec<f64>,
    /// Queued-flow count at each sample time.
    pub queue: Vec<u32>,
}

/// Everything recorded by a traced [`FlowSim::run`]: the time-ordered flow
/// event log and the per-link utilization/queue series.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FlowTrace {
    /// Flow lifecycle events in non-decreasing time order.
    pub events: Vec<FlowEvent>,
    /// One series per link, indexed by link admission order.
    pub links: Vec<LinkSeries>,
}

/// Internal recorder state; boxed so the untraced simulator stays small
/// and the disabled path costs one `Option` branch per instrumentation
/// point.
struct TraceState {
    trace: FlowTrace,
    last_rate: Vec<f64>,
    last_cwnd_floor: Vec<f64>,
    last_util: Vec<f64>,
    last_queue: Vec<u32>,
}

impl TraceState {
    fn push(&mut self, t: f64, flow: usize, kind: FlowEventKind, cwnd: f64) {
        self.trace.events.push(FlowEvent { t, flow, kind, cwnd });
    }
}

const EPS_BYTES: f64 = 1e-6;
const EPS_RATE: f64 = 1e-6;
const EPS_TIME: f64 = 1e-9;
/// Hard horizon: any flow still in flight this far in is declared failed.
/// Unreachable in practice (timeout strikes fail flows much earlier); this
/// is the belt-and-braces guarantee that rounds terminate.
const HORIZON_S: f64 = 1e7;
const TAG_FLOW_LOSS: u64 = 101;

/// The event-driven simulator. Build one per communication phase: add the
/// links, add the flows, [`FlowSim::run`], then read the outcomes.
pub struct FlowSim {
    cfg: FlowConfig,
    links: Vec<Link>,
    flows: Vec<Flow>,
    now: f64,
    trace: Option<Box<TraceState>>,
}

impl FlowSim {
    /// An empty simulation at time zero.
    pub fn new(cfg: FlowConfig) -> Self {
        cfg.validate();
        Self { cfg, links: Vec::new(), flows: Vec::new(), now: 0.0, trace: None }
    }

    /// Turns on event/series tracing. Strictly observation-only: traced and
    /// untraced runs of the same setup produce bit-identical outcomes (the
    /// recorder never touches rates, clocks or the loss hash stream).
    pub fn enable_trace(&mut self) {
        if self.trace.is_some() {
            return;
        }
        let mut st = Box::new(TraceState {
            trace: FlowTrace::default(),
            last_rate: vec![0.0; self.flows.len()],
            last_cwnd_floor: self.flows.iter().map(|f| f.cwnd.floor()).collect(),
            last_util: vec![0.0; self.links.len()],
            last_queue: vec![0; self.links.len()],
        });
        for (l, _) in self.links.iter().enumerate() {
            st.trace.links.push(LinkSeries { link: l, ..LinkSeries::default() });
        }
        for (i, f) in self.flows.iter().enumerate() {
            st.push(self.now, i, FlowEventKind::Start { bytes: f.bytes }, f.cwnd);
            if matches!(f.state, FlowState::Done { .. }) {
                st.push(self.now, i, FlowEventKind::Done, f.cwnd);
            }
        }
        self.trace = Some(st);
    }

    /// Takes the recording accumulated since [`FlowSim::enable_trace`] (or
    /// `None` if tracing was never enabled) and disables tracing.
    pub fn take_trace(&mut self) -> Option<FlowTrace> {
        self.trace.take().map(|st| st.trace)
    }

    /// Adds a link. `capacity` may be zero to model a hard outage (flows on
    /// it stall into timeouts and fail); `loss` is the per-segment loss
    /// rate in `[0, 1)`; `flap` is `Some((period, phase))` for a flapping
    /// link.
    pub fn add_link(
        &mut self,
        capacity: f64,
        loss: f64,
        latency: f64,
        flap: Option<(f64, f64)>,
    ) -> LinkId {
        assert!(capacity >= 0.0 && capacity.is_finite(), "bad capacity {capacity}");
        assert!((0.0..1.0).contains(&loss), "loss must be in [0, 1)");
        assert!(latency >= 0.0, "latency must be non-negative");
        if let Some((period, phase)) = flap {
            assert!(period > 0.0 && (0.0..=period).contains(&phase), "bad flap cycle");
        }
        self.links.push(Link { capacity, loss, latency, flap, served_bytes: 0.0 });
        if let Some(st) = self.trace.as_deref_mut() {
            st.trace.links.push(LinkSeries { link: self.links.len() - 1, ..LinkSeries::default() });
            st.last_util.push(0.0);
            st.last_queue.push(0);
        }
        LinkId(self.links.len() - 1)
    }

    /// Adds a flow of `bytes` across `path` (all links traversed in
    /// series; the slowest governs).
    pub fn add_flow(&mut self, path: &[LinkId], bytes: u64) -> FlowId {
        assert!(!path.is_empty(), "flow needs at least one link");
        let path: Vec<usize> = path.iter().map(|l| l.0).collect();
        let latency: f64 = path.iter().map(|&l| self.links[l].latency).sum();
        let cfg = &self.cfg;
        let seg = (cfg.segment_bytes as f64).min((bytes as f64).max(1.0));
        self.flows.push(Flow {
            path,
            bytes,
            remaining: bytes as f64,
            seg_size: seg,
            seg_sent: 0.0,
            tx_counter: 0,
            state: if bytes == 0 { FlowState::Done { at: 0.0 } } else { FlowState::Running },
            cwnd: cfg.init_cwnd as f64,
            ssthresh: cfg.ssthresh as f64,
            rto: cfg.base_rto,
            strikes: 0,
            stall_since: None,
            retransmits: 0,
            timeouts: 0,
            wire_bytes: 0.0,
            retransmit_bytes: 0.0,
            queue_delay: 0.0,
            rtt: cfg.min_rtt.max(2.0 * latency),
            rate: 0.0,
        });
        let i = self.flows.len() - 1;
        if let Some(st) = self.trace.as_deref_mut() {
            let f = &self.flows[i];
            st.last_rate.push(0.0);
            st.last_cwnd_floor.push(f.cwnd.floor());
            st.push(self.now, i, FlowEventKind::Start { bytes }, f.cwnd);
            if matches!(f.state, FlowState::Done { .. }) {
                st.push(self.now, i, FlowEventKind::Done, f.cwnd);
            }
        }
        FlowId(i)
    }

    /// Runs every flow to completion or failure. Guaranteed to terminate:
    /// stalls are bounded by the timeout-strike budget and everything else
    /// makes byte progress.
    pub fn run(&mut self) {
        while self.flows.iter().any(|f| !is_settled(f.state)) {
            self.assign_rates();
            let t_next = self.next_event_time();
            debug_assert!(t_next >= self.now - EPS_TIME, "event time went backwards");
            let dt = (t_next - self.now).max(0.0);
            self.integrate(dt);
            self.now = t_next;
            self.fire_events();
            if self.now > HORIZON_S {
                let now = self.now;
                let trace = &mut self.trace;
                for (i, f) in self.flows.iter_mut().enumerate() {
                    if !is_settled(f.state) {
                        f.state = FlowState::Failed { at: now };
                        if let Some(st) = trace.as_deref_mut() {
                            st.push(now, i, FlowEventKind::Failed, f.cwnd);
                        }
                    }
                }
            }
        }
    }

    /// Per-flow rate cap imposed by the congestion window.
    fn cwnd_cap(&self, f: &Flow) -> f64 {
        f.cwnd * self.cfg.segment_bytes as f64 / f.rtt
    }

    /// Computes the instantaneous rate of every flow under the configured
    /// discipline, and starts/clears stall timers accordingly.
    fn assign_rates(&mut self) {
        let caps: Vec<f64> =
            self.links.iter().map(|l| if l.up_at(self.now) { l.capacity } else { 0.0 }).collect();
        let n = self.flows.len();
        let mut rates = vec![0.0f64; n];
        let running: Vec<usize> =
            (0..n).filter(|&i| matches!(self.flows[i].state, FlowState::Running)).collect();
        match self.cfg.discipline {
            QueueDiscipline::FairShare => {
                let mut unfrozen: Vec<usize> = running
                    .iter()
                    .copied()
                    .filter(|&i| self.flows[i].path.iter().all(|&l| caps[l] > EPS_RATE))
                    .collect();
                let mut used = vec![0.0f64; self.links.len()];
                while !unfrozen.is_empty() {
                    let mut crossing = vec![0usize; self.links.len()];
                    for &i in &unfrozen {
                        for &l in &self.flows[i].path {
                            crossing[l] += 1;
                        }
                    }
                    let mut delta = f64::INFINITY;
                    for (l, &c) in crossing.iter().enumerate() {
                        if c > 0 {
                            delta = delta.min((caps[l] - used[l]).max(0.0) / c as f64);
                        }
                    }
                    for &i in &unfrozen {
                        delta = delta.min((self.cwnd_cap(&self.flows[i]) - rates[i]).max(0.0));
                    }
                    for &i in &unfrozen {
                        rates[i] += delta;
                        for &l in &self.flows[i].path {
                            used[l] += delta;
                        }
                    }
                    // Freeze flows that hit their window cap or a saturated
                    // link; at least one freezes per pass, so this halts.
                    let before = unfrozen.len();
                    unfrozen.retain(|&i| {
                        rates[i] + EPS_RATE < self.cwnd_cap(&self.flows[i])
                            && self.flows[i].path.iter().all(|&l| used[l] + EPS_RATE < caps[l])
                    });
                    if unfrozen.len() == before {
                        break;
                    }
                }
            }
            QueueDiscipline::Fifo => {
                // A flow holds a link iff no lower-indexed running flow
                // shares it; index order is admission order, and the
                // total order keeps head-of-line globally consistent.
                for &i in &running {
                    let blocked = running
                        .iter()
                        .any(|&j| j < i && shares_link(&self.flows[i].path, &self.flows[j].path));
                    if blocked {
                        continue;
                    }
                    let link_cap =
                        self.flows[i].path.iter().map(|&l| caps[l]).fold(f64::INFINITY, f64::min);
                    rates[i] = link_cap.min(self.cwnd_cap(&self.flows[i]));
                }
            }
        }
        for (i, f) in self.flows.iter_mut().enumerate() {
            f.rate = rates[i];
            if matches!(f.state, FlowState::Running) {
                if f.rate > EPS_RATE {
                    f.stall_since = None;
                } else if f.path.iter().any(|&l| caps[l] <= EPS_RATE) {
                    // No capacity at all on the path (outage or flap-down):
                    // arm the retransmission timeout.
                    if f.stall_since.is_none() {
                        f.stall_since = Some(self.now);
                    }
                } else {
                    // Queued behind other flows on a live link: waiting is
                    // queue delay, not a timeout — the queue drains via the
                    // head flow's events.
                    f.stall_since = None;
                }
            }
        }
        if let Some(st) = self.trace.as_deref_mut() {
            for (i, f) in self.flows.iter().enumerate() {
                let r = if matches!(f.state, FlowState::Running) { f.rate } else { 0.0 };
                if (r - st.last_rate[i]).abs() > EPS_RATE {
                    st.push(self.now, i, FlowEventKind::Rate { rate: r }, f.cwnd);
                    st.last_rate[i] = r;
                }
            }
            // Per-link instantaneous utilization and queue depth, coalesced
            // into step samples whenever either changes.
            let mut rate_sum = vec![0.0f64; self.links.len()];
            let mut queued = vec![0u32; self.links.len()];
            for f in &self.flows {
                if !matches!(f.state, FlowState::Running) {
                    continue;
                }
                for &l in &f.path {
                    if f.rate > EPS_RATE {
                        rate_sum[l] += f.rate;
                    } else {
                        queued[l] += 1;
                    }
                }
            }
            for (l, link) in self.links.iter().enumerate() {
                let util =
                    if link.capacity > 0.0 { (rate_sum[l] / link.capacity).min(1.0) } else { 0.0 };
                if (util - st.last_util[l]).abs() > 1e-9 || queued[l] != st.last_queue[l] {
                    let s = &mut st.trace.links[l];
                    s.t.push(self.now);
                    s.util.push(util);
                    s.queue.push(queued[l]);
                    st.last_util[l] = util;
                    st.last_queue[l] = queued[l];
                }
            }
        }
    }

    fn next_event_time(&self) -> f64 {
        let mut t = f64::INFINITY;
        let mut any_active_link = vec![false; self.links.len()];
        for f in &self.flows {
            match f.state {
                FlowState::Running => {
                    for &l in &f.path {
                        any_active_link[l] = true;
                    }
                    if f.rate > EPS_RATE {
                        t = t.min(self.now + (f.seg_size - f.seg_sent).max(0.0) / f.rate);
                    } else if let Some(s) = f.stall_since {
                        t = t.min(s + f.rto);
                    }
                }
                FlowState::Backoff { until } => t = t.min(until),
                _ => {}
            }
        }
        for (l, link) in self.links.iter().enumerate() {
            if any_active_link[l] {
                if let Some(toggle) = link.next_toggle(self.now) {
                    t = t.min(toggle);
                }
            }
        }
        // All flows settled is handled by the caller; an active flow always
        // schedules either a segment boundary, an RTO or a backoff expiry.
        debug_assert!(t.is_finite(), "no next event for an active simulation");
        t
    }

    /// Advances byte progress and accounting across `[now, now + dt)`.
    fn integrate(&mut self, dt: f64) {
        if dt <= 0.0 {
            return;
        }
        for f in &mut self.flows {
            if !matches!(f.state, FlowState::Running) {
                continue;
            }
            if f.rate > EPS_RATE {
                f.seg_sent = (f.seg_sent + f.rate * dt).min(f.seg_size);
                for &l in &f.path {
                    self.links[l].served_bytes += f.rate * dt;
                }
            } else {
                f.queue_delay += dt;
            }
        }
    }

    fn fire_events(&mut self) {
        let now = self.now;
        let Self { cfg, links, flows, trace, .. } = self;
        let mut tr = trace.as_deref_mut();
        for (i, f) in flows.iter_mut().enumerate() {
            match f.state {
                FlowState::Running if f.rate > EPS_RATE && f.seg_size - f.seg_sent <= EPS_BYTES => {
                    f.wire_bytes += f.seg_size;
                    let lost = hash_unit(cfg.seed, TAG_FLOW_LOSS, i as u64, f.tx_counter, 0)
                        < path_loss(&f.path, links);
                    f.tx_counter += 1;
                    if lost {
                        f.retransmits += 1;
                        f.retransmit_bytes += f.seg_size;
                        f.seg_sent = 0.0;
                        // Multiplicative decrease; keep at least one
                        // segment in flight.
                        f.cwnd = (f.cwnd / 2.0).max(1.0);
                        f.ssthresh = f.cwnd;
                        if let Some(st) = tr.as_deref_mut() {
                            st.last_cwnd_floor[i] = f.cwnd.floor();
                            st.push(now, i, FlowEventKind::Retransmit, f.cwnd);
                        }
                    } else {
                        f.remaining -= f.seg_size;
                        f.seg_sent = 0.0;
                        f.strikes = 0;
                        f.rto = cfg.base_rto;
                        if f.cwnd < f.ssthresh {
                            f.cwnd += 1.0;
                        } else {
                            f.cwnd += 1.0 / f.cwnd;
                        }
                        f.cwnd = f.cwnd.min(cfg.max_cwnd as f64);
                        if f.remaining <= EPS_BYTES {
                            f.remaining = 0.0;
                            f.state = FlowState::Done { at: now };
                            if let Some(st) = tr.as_deref_mut() {
                                st.push(now, i, FlowEventKind::Done, f.cwnd);
                            }
                        } else {
                            f.seg_size = (cfg.segment_bytes as f64).min(f.remaining);
                            if let Some(st) = tr.as_deref_mut() {
                                if f.cwnd.floor() != st.last_cwnd_floor[i] {
                                    st.last_cwnd_floor[i] = f.cwnd.floor();
                                    st.push(now, i, FlowEventKind::Cwnd, f.cwnd);
                                }
                            }
                        }
                    }
                }
                FlowState::Running => {
                    if let Some(s) = f.stall_since {
                        if now >= s + f.rto - EPS_TIME {
                            f.timeouts += 1;
                            f.strikes += 1;
                            f.stall_since = None;
                            if f.strikes > cfg.max_timeouts {
                                f.state = FlowState::Failed { at: now };
                                if let Some(st) = tr.as_deref_mut() {
                                    st.push(now, i, FlowEventKind::Failed, f.cwnd);
                                }
                            } else {
                                f.state = FlowState::Backoff { until: now + f.rto };
                                f.rto *= cfg.rto_backoff;
                                f.cwnd = cfg.init_cwnd as f64;
                                f.seg_sent = 0.0;
                                if let Some(st) = tr.as_deref_mut() {
                                    st.last_cwnd_floor[i] = f.cwnd.floor();
                                    st.push(
                                        now,
                                        i,
                                        FlowEventKind::Timeout { strikes: f.strikes },
                                        f.cwnd,
                                    );
                                }
                            }
                        }
                    }
                }
                FlowState::Backoff { until } if now >= until - EPS_TIME => {
                    f.state = FlowState::Running;
                    if let Some(st) = tr.as_deref_mut() {
                        st.push(now, i, FlowEventKind::BackoffEnd, f.cwnd);
                    }
                }
                _ => {}
            }
        }
    }

    /// Outcome of flow `id`; call after [`FlowSim::run`].
    pub fn outcome(&self, id: FlowId) -> FlowOutcome {
        let f = &self.flows[id.0];
        let (completed, finish) = match f.state {
            FlowState::Done { at } => (true, at),
            FlowState::Failed { at } => (false, at),
            _ => panic!("outcome read before run() settled the flow"),
        };
        FlowOutcome {
            completed,
            finish,
            payload_bytes: f.bytes,
            delivered_bytes: (f.bytes as f64 - f.remaining).round() as u64,
            wire_bytes: f.wire_bytes.round() as u64,
            retransmit_bytes: f.retransmit_bytes.round() as u64,
            retransmits: f.retransmits,
            timeouts: f.timeouts,
            queue_delay: f.queue_delay,
        }
    }

    /// Outcomes of every flow, in admission order.
    pub fn outcomes(&self) -> Vec<FlowOutcome> {
        (0..self.flows.len()).map(|i| self.outcome(FlowId(i))).collect()
    }

    /// Latest finish (or failure) time across all flows.
    pub fn makespan(&self) -> f64 {
        self.flows
            .iter()
            .map(|f| match f.state {
                FlowState::Done { at } | FlowState::Failed { at } => at,
                _ => panic!("makespan read before run() settled every flow"),
            })
            .fold(0.0, f64::max)
    }

    /// Mean utilization across links that carried any traffic: served bytes
    /// over `capacity * makespan`. Zero for an empty or instant simulation.
    pub fn mean_link_utilization(&self) -> f64 {
        let span = self.makespan();
        if span <= 0.0 {
            return 0.0;
        }
        let utils: Vec<f64> = self
            .links
            .iter()
            .filter(|l| l.capacity > 0.0 && l.served_bytes > 0.0)
            .map(|l| (l.served_bytes / (l.capacity * span)).min(1.0))
            .collect();
        if utils.is_empty() {
            0.0
        } else {
            utils.iter().sum::<f64>() / utils.len() as f64
        }
    }
}

fn is_settled(s: FlowState) -> bool {
    matches!(s, FlowState::Done { .. } | FlowState::Failed { .. })
}

fn shares_link(a: &[usize], b: &[usize]) -> bool {
    a.iter().any(|l| b.contains(l))
}

fn path_loss(path: &[usize], links: &[Link]) -> f64 {
    path.iter().map(|&l| links[l].loss).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> FlowConfig {
        FlowConfig::standard(11)
    }

    fn run_one(capacity: f64, bytes: u64) -> (FlowOutcome, f64) {
        let mut sim = FlowSim::new(cfg());
        let l = sim.add_link(capacity, 0.0, 0.0, None);
        let f = sim.add_flow(&[l], bytes);
        sim.run();
        (sim.outcome(f), sim.makespan())
    }

    #[test]
    fn lone_flow_approaches_fluid_time() {
        let (o, span) = run_one(1.0e6, 1_000_000);
        assert!(o.completed);
        assert_eq!(o.delivered_bytes, 1_000_000);
        assert_eq!(o.wire_bytes, 1_000_000);
        assert_eq!(o.retransmits, 0);
        // Fluid time is 1 s; the AIMD ramp adds a little.
        assert!(o.finish >= 1.0 - 1e-9 && o.finish < 2.0, "finish {}", o.finish);
        assert_eq!(span, o.finish);
    }

    #[test]
    fn fair_share_splits_capacity_evenly() {
        let mut sim = FlowSim::new(cfg());
        let l = sim.add_link(1.0e6, 0.0, 0.0, None);
        let a = sim.add_flow(&[l], 500_000);
        let b = sim.add_flow(&[l], 500_000);
        sim.run();
        let (oa, ob) = (sim.outcome(a), sim.outcome(b));
        assert!(oa.completed && ob.completed);
        // Both contend for the whole run: each sees ~half the link.
        assert!((oa.finish - ob.finish).abs() < 0.05, "{} vs {}", oa.finish, ob.finish);
        assert!(oa.finish > 0.9, "contention must slow both flows: {}", oa.finish);
    }

    #[test]
    fn fifo_serves_in_admission_order() {
        let mut c = cfg();
        c.discipline = QueueDiscipline::Fifo;
        let mut sim = FlowSim::new(c);
        let l = sim.add_link(1.0e6, 0.0, 0.0, None);
        let a = sim.add_flow(&[l], 500_000);
        let b = sim.add_flow(&[l], 500_000);
        sim.run();
        let (oa, ob) = (sim.outcome(a), sim.outcome(b));
        assert!(oa.finish < ob.finish, "head of line finishes first");
        assert!(ob.queue_delay > 0.3, "the queued flow waits: {}", ob.queue_delay);
    }

    #[test]
    fn loss_burns_wire_bytes_but_conserves_accounting() {
        let mut sim = FlowSim::new(cfg());
        let l = sim.add_link(1.0e6, 0.3, 0.0, None);
        let f = sim.add_flow(&[l], 1_000_000);
        sim.run();
        let o = sim.outcome(f);
        assert!(o.completed);
        assert!(o.retransmits > 0, "30% loss must cost retransmits");
        assert_eq!(o.wire_bytes, o.delivered_bytes + o.retransmit_bytes);
        let (clean, _) = run_one(1.0e6, 1_000_000);
        assert!(o.finish > clean.finish, "loss must slow the flow down");
    }

    #[test]
    fn dead_link_fails_fast_instead_of_hanging() {
        let (o, span) = run_one(0.0, 1_000_000);
        assert!(!o.completed);
        assert!(o.timeouts as usize > 0);
        assert_eq!(o.delivered_bytes, 0);
        // Strikes bound the stall: base 0.25 s doubling six times.
        assert!(span < 60.0, "failure must be prompt, took {span}");
    }

    #[test]
    fn flapping_link_stalls_then_recovers() {
        let mut sim = FlowSim::new(cfg());
        // Up for [0, 0.5) of every 1 s cycle; 1.2 MB at 1 MB/s must cross
        // at least one down phase.
        let l = sim.add_link(1.0e6, 0.0, 0.0, Some((1.0, 0.0)));
        let f = sim.add_flow(&[l], 1_200_000);
        sim.run();
        let o = sim.outcome(f);
        assert!(o.completed, "half-duty flapping still drains the flow");
        assert!(o.timeouts > 0, "the down phase must trip the stall timer");
        let (clean, _) = run_one(1.0e6, 1_200_000);
        assert!(
            o.finish > clean.finish + 0.4,
            "down-time must show up in the finish time: {} vs {}",
            o.finish,
            clean.finish
        );
    }

    #[test]
    fn outcomes_are_bit_deterministic() {
        let build = || {
            let mut sim = FlowSim::new(cfg());
            let wan = sim.add_link(2.0e6, 0.2, 0.01, None);
            let lan = sim.add_link(1.0e7, 0.0, 0.0, Some((0.5, 0.1)));
            for i in 0..5 {
                let path = if i % 2 == 0 { vec![wan] } else { vec![lan, wan] };
                sim.add_flow(&path, 300_000 + i * 10_000);
            }
            sim.run();
            sim.outcomes()
        };
        let (a, b) = (build(), build());
        assert_eq!(a, b, "same setup must replay bit-identically");
        assert!(a.iter().all(|o| o.completed));
    }

    #[test]
    fn saturation_starves_no_flow() {
        let mut sim = FlowSim::new(cfg());
        let l = sim.add_link(1.0e6, 0.0, 0.0, None);
        let ids: Vec<FlowId> = (0..16).map(|_| sim.add_flow(&[l], 200_000)).collect();
        sim.run();
        for id in ids {
            assert!(sim.outcome(id).completed, "every flow must drain under saturation");
        }
        assert!(sim.mean_link_utilization() > 0.9, "{}", sim.mean_link_utilization());
    }

    #[test]
    fn two_hop_flows_are_governed_by_the_bottleneck() {
        let mut sim = FlowSim::new(cfg());
        let fast = sim.add_link(1.0e7, 0.0, 0.0, None);
        let slow = sim.add_link(1.0e6, 0.0, 0.0, None);
        let f = sim.add_flow(&[fast, slow], 1_000_000);
        sim.run();
        let o = sim.outcome(f);
        assert!(o.completed);
        assert!(o.finish >= 1.0 - 1e-9, "bottleneck link governs: {}", o.finish);
    }

    #[test]
    fn zero_byte_flow_completes_instantly() {
        let (o, span) = run_one(1.0e6, 0);
        assert!(o.completed);
        assert_eq!(span, 0.0);
        assert_eq!(o.wire_bytes, 0);
    }

    /// The disabled trace path must stay near-free: the recorder is an
    /// `Option<Box<_>>`, so niche optimization keeps the field to one null
    /// pointer and every hot-path hook to a single discriminant branch
    /// (`if let Some(st) = self.trace`). The `flow_sim_traced` vs
    /// `flow_sim_contended_wave` perf pair bounds the *enabled* cost.
    #[test]
    fn disabled_trace_costs_one_word_and_one_branch() {
        assert_eq!(
            std::mem::size_of::<Option<Box<TraceState>>>(),
            std::mem::size_of::<usize>(),
            "disabled recorder must be a single (null) word"
        );
        let mut sim = FlowSim::new(cfg());
        let l = sim.add_link(1.0e6, 0.0, 0.01, None);
        sim.add_flow(&[l], 50_000);
        sim.run();
        assert!(sim.take_trace().is_none(), "nothing recorded unless enabled");
    }

    /// The observation contract of the tentpole: tracing must not change a
    /// single outcome bit, and the untraced simulator records nothing.
    #[test]
    fn tracing_does_not_change_outcomes() {
        let build = |traced: bool| {
            let mut sim = FlowSim::new(cfg());
            if traced {
                sim.enable_trace();
            }
            let wan = sim.add_link(2.0e6, 0.2, 0.01, None);
            let lan = sim.add_link(1.0e7, 0.0, 0.0, Some((0.5, 0.1)));
            for i in 0..5 {
                let path = if i % 2 == 0 { vec![wan] } else { vec![lan, wan] };
                sim.add_flow(&path, 300_000 + i * 10_000);
            }
            sim.run();
            let span = sim.makespan();
            (sim.outcomes(), span, sim.take_trace())
        };
        let (plain, span_plain, none) = build(false);
        let (traced, span_traced, trace) = build(true);
        assert!(none.is_none(), "untraced sim must record nothing");
        assert_eq!(plain, traced, "tracing must not perturb outcomes");
        assert_eq!(span_plain, span_traced);

        let trace = trace.expect("traced sim returns its recording");
        let starts =
            trace.events.iter().filter(|e| matches!(e.kind, FlowEventKind::Start { .. })).count();
        assert_eq!(starts, 5, "one start event per flow");
        let settled = trace
            .events
            .iter()
            .filter(|e| matches!(e.kind, FlowEventKind::Done | FlowEventKind::Failed))
            .count();
        assert_eq!(settled, 5, "every flow settles exactly once");
        let retransmits: usize =
            trace.events.iter().filter(|e| matches!(e.kind, FlowEventKind::Retransmit)).count();
        assert_eq!(
            retransmits as u64,
            plain.iter().map(|o| o.retransmits).sum::<u64>(),
            "one retransmit event per accounted retransmission"
        );
        for w in trace.events.windows(2) {
            assert!(w[0].t <= w[1].t + EPS_TIME, "events must be time-ordered");
        }
        assert_eq!(trace.links.len(), 2);
        for s in &trace.links {
            assert_eq!(s.t.len(), s.util.len());
            assert_eq!(s.t.len(), s.queue.len());
            assert!(s.t.windows(2).all(|w| w[0] <= w[1]), "series times ascend");
            assert!(s.util.iter().all(|&u| (0.0..=1.0).contains(&u)));
            assert!(!s.t.is_empty(), "contended links produce samples");
        }
    }
}
