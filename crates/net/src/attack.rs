//! Deterministic Byzantine-adversary injection for the MEC simulator.
//!
//! [`FaultModel`](crate::FaultModel) covers *environmental* faults; this
//! module covers *adversarial* ones. A configurable fraction of clients is
//! marked Byzantine, and everything a Byzantine client transmits — uploads
//! to the server **and** client-to-client migrations — is corrupted at the
//! egress point. The migration path makes this strictly nastier than in
//! vanilla FL: a poisoned model handed to a benign client contaminates that
//! client's subsequent local training before the server ever sees an
//! update.
//!
//! Like the fault schedule, the attack schedule is a *pure function* of
//! `(seed, client, epoch, coordinate)` via the shared SplitMix64 hash
//! family: the same seed reproduces the same Byzantine set and byte-wise
//! identical corruptions, and [`AttackModel::none`] (or any zero-fraction
//! config) never consumes randomness and short-circuits every query, so a
//! no-attack run is byte-identical to one executed without this layer.

use serde::{Deserialize, Serialize};

use crate::fault::hash_unit;

/// What a Byzantine client does to the models it transmits (and, for
/// [`AttackKind::LabelFlip`], to its own local training data).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AttackKind {
    /// Transmit `-w` instead of `w` — the classic sign-flip / gradient
    /// reversal attack. A single flipped model drags a plain mean far from
    /// the benign optimum.
    SignFlip,
    /// Add elementwise Gaussian noise of standard deviation
    /// [`AttackConfig::noise_std`] to every transmitted parameter.
    GaussianNoise,
    /// Transmit `scale * w` — a model-replacement / boosting attack that
    /// lets the attacker dominate a weighted mean.
    ScaledReplacement,
    /// Set a [`AttackConfig::nan_frac`] fraction of coordinates to
    /// alternating `NaN` / `+inf`. One such upload turns a plain mean into
    /// garbage everywhere the injected coordinates land.
    NanInject,
    /// Train honestly but on *flipped labels* (class `c` relabelled to
    /// `C - 1 - c`). The transmitted model is statistically unremarkable —
    /// norms and finiteness look benign — so it stresses the aggregation
    /// rule rather than the transport-level screens.
    LabelFlip,
}

impl AttackKind {
    /// Display name for tables and logs.
    pub fn name(&self) -> &'static str {
        match self {
            AttackKind::SignFlip => "sign-flip",
            AttackKind::GaussianNoise => "gauss-noise",
            AttackKind::ScaledReplacement => "scaled",
            AttackKind::NanInject => "nan-inject",
            AttackKind::LabelFlip => "label-flip",
        }
    }
}

/// Configuration of the adversary. `fraction == 0` disables every attack
/// process at zero cost.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AttackConfig {
    /// Fraction of the client population marked Byzantine. The actual count
    /// is `round(fraction * K)`, chosen deterministically from the seed.
    pub fraction: f64,
    /// The corruption applied by Byzantine clients.
    pub kind: AttackKind,
    /// Standard deviation of [`AttackKind::GaussianNoise`].
    pub noise_std: f64,
    /// Multiplier of [`AttackKind::ScaledReplacement`].
    pub scale: f64,
    /// Fraction of coordinates hit by [`AttackKind::NanInject`].
    pub nan_frac: f64,
    /// Seed of the attack schedule (independent of run and fault seeds).
    pub seed: u64,
}

impl AttackConfig {
    /// The no-attack configuration: zero Byzantine fraction.
    pub fn none() -> Self {
        Self {
            fraction: 0.0,
            kind: AttackKind::SignFlip,
            noise_std: 1.0,
            scale: -10.0,
            nan_frac: 0.05,
            seed: 0,
        }
    }

    /// A `fraction` sign-flip adversary.
    pub fn sign_flip(fraction: f64, seed: u64) -> Self {
        Self { fraction, kind: AttackKind::SignFlip, seed, ..Self::none() }
    }

    /// A `fraction` Gaussian-noise adversary of standard deviation `std`.
    pub fn gaussian(fraction: f64, std: f64, seed: u64) -> Self {
        Self { fraction, kind: AttackKind::GaussianNoise, noise_std: std, seed, ..Self::none() }
    }

    /// A `fraction` scaled-model-replacement adversary.
    pub fn scaled(fraction: f64, scale: f64, seed: u64) -> Self {
        Self { fraction, kind: AttackKind::ScaledReplacement, scale, seed, ..Self::none() }
    }

    /// A `fraction` NaN/Inf-injection adversary.
    pub fn nan_inject(fraction: f64, seed: u64) -> Self {
        Self { fraction, kind: AttackKind::NanInject, seed, ..Self::none() }
    }

    /// A `fraction` label-flip (data-poisoning) adversary.
    pub fn label_flip(fraction: f64, seed: u64) -> Self {
        Self { fraction, kind: AttackKind::LabelFlip, seed, ..Self::none() }
    }

    /// Whether the adversary is disabled.
    pub fn is_none(&self) -> bool {
        self.fraction == 0.0
    }
}

impl Default for AttackConfig {
    fn default() -> Self {
        Self::none()
    }
}

/// Domain-separation tags, disjoint from the fault-model tag space.
const TAG_SELECT: u64 = 101;
const TAG_NOISE_A: u64 = 102;
const TAG_NOISE_B: u64 = 103;
const TAG_NAN: u64 = 104;

/// The seeded adversary over a client population. The Byzantine set is
/// fixed for the run (a compromised device stays compromised); corruptions
/// are pure functions of `(seed, client, epoch, coordinate)`.
#[derive(Clone, Debug)]
pub struct AttackModel {
    config: AttackConfig,
    byzantine: Vec<bool>,
    num_byzantine: usize,
}

impl AttackModel {
    /// Builds the adversary for `num_clients` clients. The Byzantine set is
    /// the `round(fraction * K)` clients with the smallest selection hash —
    /// deterministic in the seed and independent of query order.
    ///
    /// # Panics
    /// Panics on an out-of-range fraction, non-positive noise/NaN
    /// parameters, or an empty population.
    pub fn new(config: AttackConfig, num_clients: usize) -> Self {
        assert!(num_clients > 0, "attack model needs at least one client");
        assert!(
            (0.0..=1.0).contains(&config.fraction),
            "byzantine fraction must be in [0, 1], got {}",
            config.fraction
        );
        assert!(config.noise_std >= 0.0, "noise_std must be non-negative");
        assert!((0.0..=1.0).contains(&config.nan_frac), "nan_frac must be in [0, 1]");
        let target = (config.fraction * num_clients as f64).round() as usize;
        let target = target.min(num_clients);
        let mut byzantine = vec![false; num_clients];
        if target > 0 {
            let mut ranked: Vec<(f64, usize)> = (0..num_clients)
                .map(|i| (hash_unit(config.seed, TAG_SELECT, i as u64, 0, 0), i))
                .collect();
            ranked.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            for &(_, i) in ranked.iter().take(target) {
                byzantine[i] = true;
            }
        }
        Self { config, byzantine, num_byzantine: target }
    }

    /// A disabled adversary: every client honest.
    pub fn none(num_clients: usize) -> Self {
        Self::new(AttackConfig::none(), num_clients)
    }

    /// Whether any client is Byzantine.
    pub fn enabled(&self) -> bool {
        self.num_byzantine > 0
    }

    /// The configuration this adversary was built from.
    pub fn config(&self) -> &AttackConfig {
        &self.config
    }

    /// Number of Byzantine clients.
    pub fn num_byzantine(&self) -> usize {
        self.num_byzantine
    }

    /// Whether `client` is Byzantine.
    pub fn is_byzantine(&self, client: usize) -> bool {
        self.byzantine[client]
    }

    /// Whether Byzantine clients poison their *training labels* (the
    /// label-flip attack) rather than the transmitted parameters.
    pub fn flips_labels(&self) -> bool {
        self.enabled() && self.config.kind == AttackKind::LabelFlip
    }

    /// A deterministic standard normal for `(client, epoch, coordinate)`
    /// via Box–Muller over two hash streams.
    fn normal(&self, client: usize, epoch: usize, idx: usize) -> f64 {
        let (a, b, t) = (client as u64, idx as u64, epoch as u64);
        let u1 = hash_unit(self.config.seed, TAG_NOISE_A, a, b, t).max(1e-12);
        let u2 = hash_unit(self.config.seed, TAG_NOISE_B, a, b, t);
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Corrupts `params` in place if `client` is Byzantine and the attack
    /// kind targets transmitted parameters. Returns whether a corruption was
    /// applied. Honest clients (and the label-flip attack, which poisons
    /// data instead) leave the buffer untouched.
    pub fn corrupt_upload(&self, client: usize, epoch: usize, params: &mut [f32]) -> bool {
        if !self.byzantine.get(client).copied().unwrap_or(false) {
            return false;
        }
        match self.config.kind {
            AttackKind::SignFlip => {
                for p in params.iter_mut() {
                    *p = -*p;
                }
            }
            AttackKind::GaussianNoise => {
                let std = self.config.noise_std;
                for (idx, p) in params.iter_mut().enumerate() {
                    *p += (std * self.normal(client, epoch, idx)) as f32;
                }
            }
            AttackKind::ScaledReplacement => {
                let s = self.config.scale as f32;
                for p in params.iter_mut() {
                    *p *= s;
                }
            }
            AttackKind::NanInject => {
                let mut injected = false;
                for (idx, p) in params.iter_mut().enumerate() {
                    let u = hash_unit(
                        self.config.seed,
                        TAG_NAN,
                        client as u64,
                        idx as u64,
                        epoch as u64,
                    );
                    if u < self.config.nan_frac {
                        *p = if idx % 2 == 0 { f32::NAN } else { f32::INFINITY };
                        injected = true;
                    }
                }
                if !injected && !params.is_empty() {
                    // A tiny model must still be poisoned: hit coordinate 0.
                    params[0] = f32::NAN;
                }
            }
            AttackKind::LabelFlip => return false,
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_fully_transparent() {
        let a = AttackModel::none(8);
        assert!(!a.enabled());
        assert_eq!(a.num_byzantine(), 0);
        let mut p = vec![1.0f32, -2.0, 3.0];
        for c in 0..8 {
            assert!(!a.is_byzantine(c));
            assert!(!a.corrupt_upload(c, 5, &mut p));
        }
        assert_eq!(p, vec![1.0, -2.0, 3.0]);
    }

    #[test]
    fn byzantine_count_matches_fraction_and_is_seed_deterministic() {
        let a = AttackModel::new(AttackConfig::sign_flip(0.2, 7), 10);
        let b = AttackModel::new(AttackConfig::sign_flip(0.2, 7), 10);
        assert_eq!(a.num_byzantine(), 2);
        for i in 0..10 {
            assert_eq!(a.is_byzantine(i), b.is_byzantine(i));
        }
        let c = AttackModel::new(AttackConfig::sign_flip(0.2, 8), 10);
        let same = (0..10).all(|i| a.is_byzantine(i) == c.is_byzantine(i));
        // Different seeds *can* pick the same pair, but with these seeds
        // they don't (and the fixed assertion keeps the property visible).
        assert!(!same, "seeds 7 and 8 should select different byzantine sets");
    }

    #[test]
    fn fraction_rounds_to_nearest_client() {
        assert_eq!(AttackModel::new(AttackConfig::sign_flip(0.2, 1), 4).num_byzantine(), 1);
        assert_eq!(AttackModel::new(AttackConfig::sign_flip(0.5, 1), 4).num_byzantine(), 2);
        assert_eq!(AttackModel::new(AttackConfig::sign_flip(1.0, 1), 4).num_byzantine(), 4);
    }

    #[test]
    fn sign_flip_negates() {
        let a = AttackModel::new(AttackConfig::sign_flip(1.0, 3), 2);
        let mut p = vec![1.0f32, -0.5, 0.0];
        assert!(a.corrupt_upload(0, 1, &mut p));
        assert_eq!(p, vec![-1.0, 0.5, 0.0]);
    }

    #[test]
    fn gaussian_noise_is_deterministic_and_nonzero() {
        let a = AttackModel::new(AttackConfig::gaussian(1.0, 0.5, 9), 2);
        let mut p1 = vec![0.0f32; 64];
        let mut p2 = vec![0.0f32; 64];
        a.corrupt_upload(1, 4, &mut p1);
        a.corrupt_upload(1, 4, &mut p2);
        assert_eq!(p1, p2, "same (seed, client, epoch) must corrupt identically");
        assert!(p1.iter().any(|&x| x != 0.0));
        assert!(p1.iter().all(|x| x.is_finite()));
        let mut p3 = vec![0.0f32; 64];
        a.corrupt_upload(1, 5, &mut p3);
        assert_ne!(p1, p3, "different epochs draw different noise");
    }

    #[test]
    fn scaled_replacement_multiplies() {
        let a = AttackModel::new(AttackConfig::scaled(1.0, -10.0, 2), 1);
        let mut p = vec![1.0f32, 2.0];
        assert!(a.corrupt_upload(0, 0, &mut p));
        assert_eq!(p, vec![-10.0, -20.0]);
    }

    #[test]
    fn nan_inject_always_poisons_something() {
        let a = AttackModel::new(AttackConfig::nan_inject(1.0, 11), 1);
        for len in [1usize, 3, 1000] {
            let mut p = vec![1.0f32; len];
            assert!(a.corrupt_upload(0, 2, &mut p));
            assert!(p.iter().any(|x| !x.is_finite()), "len {len} escaped injection");
        }
    }

    #[test]
    fn label_flip_leaves_params_alone() {
        let a = AttackModel::new(AttackConfig::label_flip(1.0, 4), 2);
        assert!(a.flips_labels());
        let mut p = vec![1.0f32, 2.0];
        assert!(!a.corrupt_upload(0, 0, &mut p));
        assert_eq!(p, vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn rejects_bad_fraction() {
        let _ = AttackModel::new(AttackConfig::sign_flip(1.5, 0), 4);
    }
}
