use serde::{Deserialize, Serialize};

/// Hardware tier of an edge device, mirroring the paper's test-bed mix of
/// NVIDIA Jetson TX2 (slower) and Xavier NX (faster) boards.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeviceTier {
    /// Jetson-TX2-class device.
    Tx2,
    /// Xavier-NX-class device (roughly twice the training throughput).
    Nx,
}

impl DeviceTier {
    /// Training throughput in samples/second for the simulated model scale.
    pub fn samples_per_second(self) -> f64 {
        match self {
            DeviceTier::Tx2 => 600.0,
            DeviceTier::Nx => 1200.0,
        }
    }
}

/// Heterogeneous per-client compute model.
#[derive(Clone, Debug)]
pub struct ClientCompute {
    tiers: Vec<DeviceTier>,
}

impl ClientCompute {
    /// All clients on the same tier.
    pub fn homogeneous(k: usize, tier: DeviceTier) -> Self {
        Self { tiers: vec![tier; k] }
    }

    /// The test-bed mix: alternating TX2 and NX devices (the paper uses 15
    /// of each among 30 devices).
    pub fn testbed_mix(k: usize) -> Self {
        let tiers =
            (0..k).map(|i| if i % 2 == 0 { DeviceTier::Tx2 } else { DeviceTier::Nx }).collect();
        Self { tiers }
    }

    /// Number of clients.
    pub fn len(&self) -> usize {
        self.tiers.len()
    }

    /// Whether there are no clients.
    pub fn is_empty(&self) -> bool {
        self.tiers.is_empty()
    }

    /// Tier of client `i`.
    pub fn tier(&self, i: usize) -> DeviceTier {
        self.tiers[i]
    }

    /// Seconds for client `i` to run one local epoch over `samples` samples.
    pub fn epoch_time(&self, i: usize, samples: usize) -> f64 {
        samples as f64 / self.tiers[i].samples_per_second()
    }

    /// [`Self::epoch_time`] with a fault-injected straggler multiplier
    /// layered on (see [`crate::FaultModel::slowdown`]); `slowdown` must be
    /// at least 1.
    pub fn epoch_time_slowed(&self, i: usize, samples: usize, slowdown: f64) -> f64 {
        assert!(slowdown >= 1.0, "slowdown must be >= 1");
        self.epoch_time(i, samples) * slowdown
    }

    /// Computation *cost* `c_k` of one epoch on client `i` — proportional to
    /// the local data volume, as in the paper's problem formulation
    /// (Sec. II-D). Measured in sample-passes.
    pub fn epoch_cost(&self, _i: usize, samples: usize) -> f64 {
        samples as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nx_is_faster_than_tx2() {
        let c = ClientCompute::testbed_mix(4);
        assert_eq!(c.tier(0), DeviceTier::Tx2);
        assert_eq!(c.tier(1), DeviceTier::Nx);
        assert!(c.epoch_time(0, 600) > c.epoch_time(1, 600));
        assert!((c.epoch_time(0, 600) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cost_is_proportional_to_data() {
        let c = ClientCompute::homogeneous(2, DeviceTier::Nx);
        assert_eq!(c.epoch_cost(0, 100), 100.0);
        assert_eq!(c.epoch_cost(1, 300), 300.0);
    }
}
