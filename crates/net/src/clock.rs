/// Virtual wall-clock of a synchronous FL run.
///
/// In a synchronous round every client computes and communicates in
/// parallel, so the round's duration is the *maximum* over participants;
/// the clock advances by that maximum. [`SimClock::advance_parallel`]
/// captures this directly.
#[derive(Clone, Copy, Debug, Default)]
pub struct SimClock {
    now: f64,
}

impl SimClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// A clock restored to `now` seconds (run-checkpoint resume).
    pub fn at(now: f64) -> Self {
        assert!(now >= 0.0 && now.is_finite(), "invalid clock time {now}");
        Self { now }
    }

    /// Current virtual time in seconds.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Advances by `seconds` (a serial phase).
    pub fn advance(&mut self, seconds: f64) {
        assert!(seconds >= 0.0 && seconds.is_finite(), "invalid time delta {seconds}");
        self.now += seconds;
    }

    /// Advances by the maximum of `durations` (a parallel phase); empty
    /// input advances by zero.
    pub fn advance_parallel(&mut self, durations: impl IntoIterator<Item = f64>) {
        let max = durations.into_iter().fold(0.0f64, f64::max);
        self.advance(max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_accumulate() {
        let mut c = SimClock::new();
        c.advance(1.5);
        c.advance(0.5);
        assert_eq!(c.now(), 2.0);
    }

    #[test]
    fn parallel_takes_max() {
        let mut c = SimClock::new();
        c.advance_parallel([1.0, 3.0, 2.0]);
        assert_eq!(c.now(), 3.0);
        c.advance_parallel(std::iter::empty());
        assert_eq!(c.now(), 3.0);
    }

    #[test]
    #[should_panic(expected = "invalid time delta")]
    fn rejects_negative_delta() {
        SimClock::new().advance(-1.0);
    }
}
