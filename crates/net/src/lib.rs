//! Event-driven MEC network simulator for the FedMigr reproduction.
//!
//! The paper's evaluation runs on (a) a simulated topology of clients
//! grouped into LANs behind one edge server, and (b) a 30-device test-bed
//! whose parameter server sits across a ~50 Mbps WAN. Both reduce to the
//! same accounting: a transfer of `bytes` over a link of bandwidth `bw`
//! takes `bytes / bw` seconds, client-to-server (C2S) traffic crosses the
//! scarce WAN, and client-to-client (C2C) traffic is cheap inside a LAN and
//! of mixed speed across LANs. This crate implements that accounting:
//!
//! * [`Topology`] — LAN membership, C2S bandwidths, a seeded C2C bandwidth
//!   matrix with fast/moderate/slow speed classes (Fig. 8) and optional
//!   per-epoch jitter (the "time-varying wireless links" of Sec. III-B),
//! * [`ClientCompute`] — heterogeneous per-client training speeds (the
//!   test-bed's mix of Jetson TX2 and Xavier NX devices),
//! * [`ResourceMeter`] / [`ResourceBudget`] — the computation and bandwidth
//!   budgets `B_c`, `B_b` of the FLMM problem (Eq. 16), split into C2S and
//!   local/global C2C traffic,
//! * [`SimClock`] — virtual wall-clock time of a synchronous FL round,
//! * [`FlowSim`] / [`TransportConfig`] — an event-driven flow transport in
//!   which concurrent transfers share link capacity (fair-share or FIFO)
//!   and run timeout/retransmission state machines with AIMD congestion
//!   control; the lockstep accounting above remains the default and stays
//!   byte-identical to the seeded baselines.

pub mod attack;
mod budget;
mod clock;
mod compute;
pub mod fault;
pub mod flow;
mod topology;
pub mod transport;

pub use attack::{AttackConfig, AttackKind, AttackModel};
pub use budget::{MeterState, ResourceBudget, ResourceMeter, TrafficBreakdown};
pub use clock::SimClock;
pub use compute::{ClientCompute, DeviceTier};
pub use fault::{FaultConfig, FaultModel, RetryPolicy};
pub use flow::{
    FlowConfig, FlowEvent, FlowEventKind, FlowOutcome, FlowSim, FlowTrace, LinkSeries,
    QueueDiscipline,
};
pub use topology::{LinkClass, Topology, TopologyConfig};
pub use transport::{
    simulate_c2s, simulate_c2s_traced, simulate_migrations, simulate_migrations_traced,
    upload_deadline, PhaseSim, PhaseTrace, TransportAccum, TransportAccumState, TransportConfig,
    TransportStats,
};

/// Seconds to move `bytes` over a link of `bandwidth` bytes/second, or
/// `None` when the link is effectively down (`bandwidth` zero, negative, or
/// NaN — e.g. a fault-injected outage).
pub fn try_transfer_time(bytes: u64, bandwidth: f64) -> Option<f64> {
    if bandwidth > 0.0 {
        Some(bytes as f64 / bandwidth)
    } else {
        None
    }
}

/// Transfer time including a one-way propagation latency, or `None` when
/// the link is down. See [`try_transfer_time`].
pub fn try_transfer_time_with_latency(bytes: u64, bandwidth: f64, latency: f64) -> Option<f64> {
    assert!(latency >= 0.0, "latency must be non-negative");
    try_transfer_time(bytes, bandwidth).map(|t| latency + t)
}

/// Seconds to move `bytes` over a link of `bandwidth` bytes/second.
///
/// Convenience wrapper over [`try_transfer_time`] for call sites that never
/// see fault-injected links.
///
/// # Panics
/// Panics if `bandwidth` is not strictly positive.
pub fn transfer_time(bytes: u64, bandwidth: f64) -> f64 {
    try_transfer_time(bytes, bandwidth).expect("bandwidth must be positive")
}

/// Transfer time including a one-way propagation latency.
///
/// # Panics
/// Panics if `bandwidth` is not strictly positive.
pub fn transfer_time_with_latency(bytes: u64, bandwidth: f64, latency: f64) -> f64 {
    try_transfer_time_with_latency(bytes, bandwidth, latency).expect("bandwidth must be positive")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_is_linear() {
        assert_eq!(transfer_time(100, 50.0), 2.0);
        assert_eq!(transfer_time(0, 50.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn transfer_time_rejects_zero_bandwidth() {
        let _ = transfer_time(1, 0.0);
    }

    #[test]
    fn latency_adds_a_constant() {
        assert_eq!(transfer_time_with_latency(100, 50.0, 0.5), 2.5);
        assert_eq!(transfer_time_with_latency(0, 50.0, 0.1), 0.1);
    }

    #[test]
    fn try_variants_signal_downed_links_instead_of_panicking() {
        assert_eq!(try_transfer_time(100, 50.0), Some(2.0));
        assert_eq!(try_transfer_time(100, 0.0), None);
        assert_eq!(try_transfer_time(100, -1.0), None);
        assert_eq!(try_transfer_time(100, f64::NAN), None);
        assert_eq!(try_transfer_time_with_latency(100, 50.0, 0.5), Some(2.5));
        assert_eq!(try_transfer_time_with_latency(100, 0.0, 0.5), None);
    }
}
