//! Deterministic fault injection for the MEC simulator.
//!
//! The paper's setting is heterogeneous edge computing with time-varying
//! wireless links (Sec. III-B); real deployments of that setting are
//! defined by churn — devices crash and rejoin, stragglers blow through
//! round deadlines, and links drop or degrade. [`FaultModel`] layers those
//! failure processes over [`crate::Topology`] and [`crate::ClientCompute`]
//! as *pure functions* of `(seed, entity, epoch)`: no mutable state, no
//! shared RNG stream. That gives two properties the runner relies on:
//!
//! 1. **Determinism** — the same seed and config produce bit-identical
//!    fault schedules, independently of query order.
//! 2. **Zero cost when disabled** — [`FaultModel::none`] never consumes
//!    randomness and every query short-circuits, so a fault-free run is
//!    byte-identical to one executed without the fault layer at all.

use serde::{Deserialize, Serialize};

/// Bounded retry with exponential backoff for failed transfers.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Maximum number of retry attempts after the initial failure.
    pub max_retries: u32,
    /// Backoff charged before the first retry, in seconds.
    pub base_backoff: f64,
    /// Multiplicative backoff growth per attempt (>= 1).
    pub backoff_factor: f64,
    /// Probability that an individual retry attempt goes through (models
    /// transient recovery within an epoch).
    pub retry_success_prob: f64,
}

impl RetryPolicy {
    /// The default policy: three retries starting at 0.5 s, doubling.
    pub fn standard() -> Self {
        Self { max_retries: 3, base_backoff: 0.5, backoff_factor: 2.0, retry_success_prob: 0.5 }
    }

    /// Backoff charged before retry `attempt` (1-based), in seconds.
    pub fn backoff(&self, attempt: u32) -> f64 {
        assert!(attempt >= 1, "attempts are 1-based");
        self.base_backoff * self.backoff_factor.powi(attempt as i32 - 1)
    }

    /// Total backoff charged by `attempts` consecutive retries. Monotone
    /// non-decreasing in `attempts` (each term is non-negative).
    pub fn total_backoff(&self, attempts: u32) -> f64 {
        (1..=attempts).map(|a| self.backoff(a)).sum()
    }
}

/// Configuration of the fault processes. All probabilities are per epoch.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Probability a live client begins an outage (crash/dropout) at a
    /// given epoch. The client rejoins automatically when the outage ends.
    pub crash_prob: f64,
    /// Maximum outage length in epochs; actual lengths are uniform in
    /// `1..=max_outage_epochs`.
    pub max_outage_epochs: usize,
    /// Probability a client is a straggler in a given epoch.
    pub straggler_prob: f64,
    /// Local-epoch time multiplier for straggling clients (>= 1).
    pub straggler_slowdown: f64,
    /// Straggler deadline as a multiple of the *median* per-client round
    /// time; arrivals past the deadline miss the round. `f64::INFINITY`
    /// disables the deadline.
    pub straggler_deadline: f64,
    /// Probability a C2C link is out for a given epoch (symmetric).
    pub link_outage_prob: f64,
    /// Probability a client's WAN (C2S) path is out for a given epoch.
    pub c2s_outage_prob: f64,
    /// Probability a C2C link is degraded for a given epoch.
    pub degraded_prob: f64,
    /// Fraction of bandwidth lost on a degraded link, in `[0, 1)`.
    pub degradation: f64,
    /// Probability a link *flaps* (cycles up/down) for a given epoch. Only
    /// the event-driven flow transport reacts to flapping; the lockstep
    /// path treats a flapping link as healthy.
    pub flap_prob: f64,
    /// Full on/off cycle length of a flapping link, in seconds (> 0). The
    /// link is up for the first half of each cycle.
    pub flap_period: f64,
    /// Probability a link suffers burst loss for a given epoch.
    pub burst_loss_prob: f64,
    /// Per-segment loss rate while a burst is active, in `[0, 1)`.
    pub burst_loss_rate: f64,
    /// Probability a link's bandwidth collapses for a given epoch.
    pub bw_collapse_prob: f64,
    /// Bandwidth multiplier on a collapsed link, in `(0, 1]`.
    pub bw_collapse_factor: f64,
    /// Retry/backoff policy for failed transfers.
    pub retry: RetryPolicy,
    /// Explicit `(client, epoch)` pairs at which the client's training
    /// thread panics mid-round — a deterministic stand-in for software
    /// crashes (poisoned inputs, OOM aborts) as opposed to the
    /// availability outages of `crash_prob`. The runner catches the panic
    /// and treats the client as crashed for that round.
    pub panics: Vec<(usize, usize)>,
    /// Seed of the fault schedule (independent of the run seed).
    pub seed: u64,
}

impl FaultConfig {
    /// The no-fault configuration: every probability zero, no deadline.
    pub fn none() -> Self {
        Self {
            crash_prob: 0.0,
            max_outage_epochs: 1,
            straggler_prob: 0.0,
            straggler_slowdown: 1.0,
            straggler_deadline: f64::INFINITY,
            link_outage_prob: 0.0,
            c2s_outage_prob: 0.0,
            degraded_prob: 0.0,
            degradation: 0.0,
            flap_prob: 0.0,
            flap_period: 1.0,
            burst_loss_prob: 0.0,
            burst_loss_rate: 0.0,
            bw_collapse_prob: 0.0,
            bw_collapse_factor: 1.0,
            retry: RetryPolicy::standard(),
            panics: Vec::new(),
            seed: 0,
        }
    }

    /// An edge-churn preset parameterized by a single dropout rate: clients
    /// crash at `dropout` per epoch (outages up to 3 epochs), links fail at
    /// half that rate, and moderate straggling with a 2.5x median deadline.
    pub fn edge_churn(dropout: f64, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&dropout), "dropout must be in [0, 1)");
        Self {
            crash_prob: dropout,
            max_outage_epochs: 3,
            straggler_prob: 0.15,
            straggler_slowdown: 3.0,
            straggler_deadline: 2.5,
            link_outage_prob: dropout / 2.0,
            c2s_outage_prob: dropout / 4.0,
            degraded_prob: dropout,
            degradation: 0.5,
            flap_prob: 0.0,
            flap_period: 1.0,
            burst_loss_prob: 0.0,
            burst_loss_rate: 0.0,
            bw_collapse_prob: 0.0,
            bw_collapse_factor: 1.0,
            retry: RetryPolicy::standard(),
            panics: Vec::new(),
            seed,
        }
    }

    /// Layers transport-level network stress — flapping links, burst loss
    /// and bandwidth collapse — on top of an existing config at intensity
    /// `level` in `[0, 1)`. These processes only bite under the flow
    /// transport; the lockstep path ignores them entirely.
    pub fn with_network_stress(mut self, level: f64) -> Self {
        assert!((0.0..1.0).contains(&level), "stress level must be in [0, 1)");
        self.flap_prob = level / 2.0;
        self.flap_period = 0.1;
        self.burst_loss_prob = level;
        self.burst_loss_rate = 0.3;
        self.bw_collapse_prob = level / 2.0;
        self.bw_collapse_factor = 0.25;
        self
    }

    /// Whether every fault process is disabled.
    pub fn is_none(&self) -> bool {
        self.crash_prob == 0.0
            && self.straggler_prob == 0.0
            && self.link_outage_prob == 0.0
            && self.c2s_outage_prob == 0.0
            && self.degraded_prob == 0.0
            && self.flap_prob == 0.0
            && self.burst_loss_prob == 0.0
            && self.bw_collapse_prob == 0.0
            && self.straggler_deadline.is_infinite()
            && self.panics.is_empty()
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self::none()
    }
}

/// The seeded fault schedule over a client population. All queries are pure
/// functions of `(config.seed, entity, epoch)` — see the module docs.
#[derive(Clone, Debug)]
pub struct FaultModel {
    config: FaultConfig,
    num_clients: usize,
    enabled: bool,
}

/// Domain-separation tags for the per-entity hash streams.
const TAG_CRASH: u64 = 1;
const TAG_OUTAGE_LEN: u64 = 2;
const TAG_STRAGGLER: u64 = 3;
const TAG_LINK: u64 = 4;
const TAG_C2S: u64 = 5;
const TAG_DEGRADED: u64 = 6;
const TAG_RETRY: u64 = 7;
const TAG_FLAP: u64 = 8;
const TAG_BURST_LOSS: u64 = 9;
const TAG_BW_COLLAPSE: u64 = 10;
const TAG_FLAP_PHASE: u64 = 11;

/// SplitMix64-style avalanche over `(seed, tag, a, b, t)`, mapped to a
/// uniform value in `[0, 1)`. Shared by [`FaultModel`] and
/// [`crate::AttackModel`] so both schedules are pure functions of their
/// seed — no mutable RNG state, no query-order sensitivity. The constants
/// match the topology jitter hash family.
pub(crate) fn hash_unit(seed: u64, tag: u64, a: u64, b: u64, t: u64) -> f64 {
    let mut x = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(tag)
        .wrapping_mul(0xBF58_476D_1CE4_E5B9)
        .wrapping_add(a)
        .wrapping_mul(0x94D0_49BB_1331_11EB)
        .wrapping_add(b)
        .wrapping_mul(0x2545_F491_4F6C_DD1D)
        .wrapping_add(t);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x >> 11) as f64 / (1u64 << 53) as f64
}

impl FaultModel {
    /// Builds the schedule for `num_clients` clients.
    ///
    /// # Panics
    /// Panics on out-of-range probabilities or a non-positive slowdown.
    pub fn new(config: FaultConfig, num_clients: usize) -> Self {
        assert!(num_clients > 0, "fault model needs at least one client");
        for p in [
            config.crash_prob,
            config.straggler_prob,
            config.link_outage_prob,
            config.c2s_outage_prob,
            config.degraded_prob,
            config.flap_prob,
            config.burst_loss_prob,
            config.bw_collapse_prob,
            config.retry.retry_success_prob,
        ] {
            assert!((0.0..=1.0).contains(&p), "probabilities must be in [0, 1], got {p}");
        }
        assert!(config.crash_prob < 1.0, "crash_prob 1.0 would never let any client run");
        assert!((0.0..1.0).contains(&config.degradation), "degradation must be in [0, 1)");
        assert!((0.0..1.0).contains(&config.burst_loss_rate), "loss rate must be in [0, 1)");
        assert!(config.flap_period > 0.0, "flap period must be positive");
        assert!(
            config.bw_collapse_factor > 0.0 && config.bw_collapse_factor <= 1.0,
            "collapse factor must be in (0, 1]"
        );
        assert!(config.straggler_slowdown >= 1.0, "slowdown must be >= 1");
        assert!(config.max_outage_epochs >= 1, "outages last at least one epoch");
        assert!(
            config.straggler_deadline > 0.0,
            "deadline factor must be positive (INFINITY disables it)"
        );
        let enabled = !config.is_none();
        Self { config, num_clients, enabled }
    }

    /// A disabled model: every client always alive, every link always up.
    pub fn none(num_clients: usize) -> Self {
        Self::new(FaultConfig::none(), num_clients)
    }

    /// Whether any fault process is active.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// The configuration this schedule was built from.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Number of clients covered.
    pub fn num_clients(&self) -> usize {
        self.num_clients
    }

    fn unit(&self, tag: u64, a: u64, b: u64, t: u64) -> f64 {
        hash_unit(self.config.seed, tag, a, b, t)
    }

    /// Whether an outage *starts* for `client` at `epoch`.
    fn crash_starts(&self, client: usize, epoch: usize) -> bool {
        self.unit(TAG_CRASH, client as u64, 0, epoch as u64) < self.config.crash_prob
    }

    /// Length in epochs of the outage starting at `epoch` (only meaningful
    /// when [`Self::crash_starts`] holds there).
    fn outage_len(&self, client: usize, epoch: usize) -> usize {
        let m = self.config.max_outage_epochs as u64;
        1 + (self.unit(TAG_OUTAGE_LEN, client as u64, 0, epoch as u64) * m as f64) as usize
            % m as usize
    }

    /// Whether `client` is up during `epoch`. Dead clients neither train
    /// nor communicate; they rejoin automatically when the outage ends.
    pub fn is_alive(&self, client: usize, epoch: usize) -> bool {
        if !self.enabled || self.config.crash_prob == 0.0 {
            return true;
        }
        let horizon = self.config.max_outage_epochs.min(epoch);
        for back in 0..=horizon {
            let start = epoch - back;
            if self.crash_starts(client, start) && start + self.outage_len(client, start) > epoch {
                return false;
            }
        }
        true
    }

    /// Local-epoch time multiplier for `client` at `epoch` (1.0 = nominal).
    pub fn slowdown(&self, client: usize, epoch: usize) -> f64 {
        if self.enabled
            && self.unit(TAG_STRAGGLER, client as u64, 0, epoch as u64) < self.config.straggler_prob
        {
            self.config.straggler_slowdown
        } else {
            1.0
        }
    }

    /// Whether the (symmetric) C2C link between `i` and `j` is up at
    /// `epoch`. The degenerate `i == j` "link" is always up.
    pub fn link_up(&self, i: usize, j: usize, epoch: usize) -> bool {
        if !self.enabled || i == j {
            return true;
        }
        let (a, b) = (i.min(j) as u64, i.max(j) as u64);
        self.unit(TAG_LINK, a, b, epoch as u64) >= self.config.link_outage_prob
    }

    /// Bandwidth multiplier of the `i <-> j` link at `epoch` (1.0 when
    /// healthy, `1 - degradation` when degraded). Orthogonal to outages.
    pub fn link_quality(&self, i: usize, j: usize, epoch: usize) -> f64 {
        if !self.enabled || i == j {
            return 1.0;
        }
        let (a, b) = (i.min(j) as u64, i.max(j) as u64);
        if self.unit(TAG_DEGRADED, a, b, epoch as u64) < self.config.degraded_prob {
            1.0 - self.config.degradation
        } else {
            1.0
        }
    }

    /// Whether `client`'s WAN (C2S) path is up at `epoch`.
    pub fn c2s_up(&self, client: usize, epoch: usize) -> bool {
        !self.enabled
            || self.unit(TAG_C2S, client as u64, 0, epoch as u64) >= self.config.c2s_outage_prob
    }

    /// Whether retry number `attempt` (1-based) of a transfer over the
    /// `i <-> j` link at `epoch` succeeds. Use `j = usize::MAX` for C2S
    /// paths.
    pub fn retry_succeeds(&self, i: usize, j: usize, epoch: usize, attempt: u32) -> bool {
        if !self.enabled {
            return true;
        }
        let (a, b) = (i.min(j) as u64, i.max(j) as u64);
        self.unit(TAG_RETRY, a, b, (epoch as u64) << 8 | attempt as u64)
            < self.config.retry.retry_success_prob
    }

    /// Up/down cycle of the `i <-> j` link at `epoch` when it flaps:
    /// `Some((period, phase))` with the link up during the first half of
    /// each `period`, shifted by `phase` seconds into the cycle. `None`
    /// when the link is steady. Use `j = usize::MAX` for C2S paths. Only
    /// the flow transport consumes this.
    pub fn link_flap(&self, i: usize, j: usize, epoch: usize) -> Option<(f64, f64)> {
        if !self.enabled || i == j || self.config.flap_prob == 0.0 {
            return None;
        }
        let (a, b) = (i.min(j) as u64, i.max(j) as u64);
        if self.unit(TAG_FLAP, a, b, epoch as u64) < self.config.flap_prob {
            let period = self.config.flap_period;
            let phase = self.unit(TAG_FLAP_PHASE, a, b, epoch as u64) * period;
            Some((period, phase))
        } else {
            None
        }
    }

    /// Per-segment burst-loss rate on the `i <-> j` link at `epoch` (zero
    /// when no burst is active). Use `j = usize::MAX` for C2S paths. Only
    /// the flow transport consumes this.
    pub fn link_burst_loss(&self, i: usize, j: usize, epoch: usize) -> f64 {
        if !self.enabled || i == j || self.config.burst_loss_prob == 0.0 {
            return 0.0;
        }
        let (a, b) = (i.min(j) as u64, i.max(j) as u64);
        if self.unit(TAG_BURST_LOSS, a, b, epoch as u64) < self.config.burst_loss_prob {
            self.config.burst_loss_rate
        } else {
            0.0
        }
    }

    /// Bandwidth-collapse multiplier of the `i <-> j` link at `epoch` (1.0
    /// when healthy). Use `j = usize::MAX` for C2S paths. Composes with
    /// [`Self::link_quality`]; only the flow transport consumes it.
    pub fn link_bw_collapse(&self, i: usize, j: usize, epoch: usize) -> f64 {
        if !self.enabled || i == j || self.config.bw_collapse_prob == 0.0 {
            return 1.0;
        }
        let (a, b) = (i.min(j) as u64, i.max(j) as u64);
        if self.unit(TAG_BW_COLLAPSE, a, b, epoch as u64) < self.config.bw_collapse_prob {
            self.config.bw_collapse_factor
        } else {
            1.0
        }
    }

    /// Whether `client`'s training thread is scheduled to panic at `epoch`
    /// (the explicit `panics` injection list).
    pub fn client_panics(&self, client: usize, epoch: usize) -> bool {
        self.enabled && self.config.panics.contains(&(client, epoch))
    }

    /// The retry policy in force.
    pub fn retry(&self) -> RetryPolicy {
        self.config.retry
    }

    /// Straggler deadline in seconds given the median per-client round time
    /// `median_time`, or `None` when the deadline is disabled.
    pub fn deadline(&self, median_time: f64) -> Option<f64> {
        if self.enabled && self.config.straggler_deadline.is_finite() {
            Some(self.config.straggler_deadline * median_time)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn churn() -> FaultModel {
        FaultModel::new(FaultConfig::edge_churn(0.3, 42), 10)
    }

    #[test]
    fn none_is_fully_transparent() {
        let f = FaultModel::none(5);
        assert!(!f.enabled());
        for e in 0..50 {
            for i in 0..5 {
                assert!(f.is_alive(i, e));
                assert_eq!(f.slowdown(i, e), 1.0);
                assert!(f.c2s_up(i, e));
                for j in 0..5 {
                    assert!(f.link_up(i, j, e));
                    assert_eq!(f.link_quality(i, j, e), 1.0);
                }
            }
        }
    }

    #[test]
    fn schedules_are_deterministic_and_seed_sensitive() {
        let a = churn();
        let b = churn();
        let c = FaultModel::new(FaultConfig::edge_churn(0.3, 43), 10);
        let mut diff = 0usize;
        for e in 0..100 {
            for i in 0..10 {
                assert_eq!(a.is_alive(i, e), b.is_alive(i, e));
                assert_eq!(a.slowdown(i, e), b.slowdown(i, e));
                if a.is_alive(i, e) != c.is_alive(i, e) {
                    diff += 1;
                }
            }
        }
        assert!(diff > 0, "different seeds should produce different schedules");
    }

    #[test]
    fn dropout_rate_is_roughly_calibrated() {
        let f = churn();
        let mut down = 0usize;
        let mut total = 0usize;
        for e in 1..200 {
            for i in 0..10 {
                total += 1;
                if !f.is_alive(i, e) {
                    down += 1;
                }
            }
        }
        let frac = down as f64 / total as f64;
        // 30% starts with outages up to 3 epochs -> well above 0.3
        // steady-state downtime; just bound it away from degenerate values.
        assert!(frac > 0.2 && frac < 0.8, "down fraction {frac}");
    }

    #[test]
    fn outages_persist_and_end() {
        let f = churn();
        // Find an outage and check the client stays down for its duration
        // and eventually rejoins.
        'outer: for i in 0..10 {
            for e in 1..100 {
                if f.is_alive(i, e - 1) && !f.is_alive(i, e) {
                    let mut end = e;
                    while !f.is_alive(i, end) {
                        end += 1;
                        assert!(end < e + 10, "outage never ended");
                    }
                    assert!(end > e);
                    break 'outer;
                }
            }
        }
    }

    #[test]
    fn links_fail_symmetrically() {
        let f = churn();
        for e in 0..50 {
            for i in 0..10 {
                for j in 0..10 {
                    assert_eq!(f.link_up(i, j, e), f.link_up(j, i, e));
                    assert_eq!(f.link_quality(i, j, e), f.link_quality(j, i, e));
                }
            }
        }
    }

    #[test]
    fn degraded_links_lose_configured_fraction() {
        let f = churn();
        let mut degraded = 0;
        for e in 0..100 {
            let q = f.link_quality(0, 5, e);
            assert!(q == 1.0 || (q - 0.5).abs() < 1e-12);
            if q < 1.0 {
                degraded += 1;
            }
        }
        assert!(degraded > 0, "30% degradation probability never fired in 100 epochs");
    }

    #[test]
    fn backoff_grows_exponentially_and_total_is_monotone() {
        let p = RetryPolicy::standard();
        assert_eq!(p.backoff(1), 0.5);
        assert_eq!(p.backoff(2), 1.0);
        assert_eq!(p.backoff(3), 2.0);
        let mut prev = 0.0;
        for n in 0..10 {
            let t = p.total_backoff(n);
            assert!(t >= prev);
            prev = t;
        }
    }

    #[test]
    fn deadline_scales_median() {
        let f = churn();
        assert_eq!(f.deadline(2.0), Some(5.0));
        assert_eq!(FaultModel::none(3).deadline(2.0), None);
    }

    #[test]
    fn network_stress_composes_with_churn_and_is_symmetric() {
        let cfg = FaultConfig::edge_churn(0.2, 9).with_network_stress(0.5);
        assert!(!cfg.is_none());
        let f = FaultModel::new(cfg, 10);
        let (mut flaps, mut bursts, mut collapses) = (0, 0, 0);
        for e in 0..100 {
            for i in 0..10 {
                for j in (i + 1)..10 {
                    assert_eq!(f.link_flap(i, j, e), f.link_flap(j, i, e));
                    assert_eq!(f.link_burst_loss(i, j, e), f.link_burst_loss(j, i, e));
                    assert_eq!(f.link_bw_collapse(i, j, e), f.link_bw_collapse(j, i, e));
                    if let Some((period, phase)) = f.link_flap(i, j, e) {
                        flaps += 1;
                        assert!(period > 0.0 && (0.0..period).contains(&phase));
                    }
                    if f.link_burst_loss(i, j, e) > 0.0 {
                        bursts += 1;
                        assert_eq!(f.link_burst_loss(i, j, e), 0.3);
                    }
                    if f.link_bw_collapse(i, j, e) < 1.0 {
                        collapses += 1;
                        assert_eq!(f.link_bw_collapse(i, j, e), 0.25);
                    }
                }
            }
        }
        assert!(flaps > 0 && bursts > 0 && collapses > 0, "{flaps}/{bursts}/{collapses}");
    }

    #[test]
    fn stress_processes_are_silent_when_disabled() {
        let f = churn(); // churn carries no transport stress
        for e in 0..50 {
            assert_eq!(f.link_flap(0, 5, e), None);
            assert_eq!(f.link_burst_loss(0, 5, e), 0.0);
            assert_eq!(f.link_bw_collapse(0, 5, e), 1.0);
        }
        // C2S paths use the j = MAX convention.
        let stressed = FaultModel::new(FaultConfig::none().with_network_stress(0.6), 4);
        assert!(!stressed.config().is_none());
        let hits = (0..100).filter(|&e| stressed.link_burst_loss(1, usize::MAX, e) > 0.0).count();
        assert!(hits > 20, "c2s burst loss never fired: {hits}");
    }

    #[test]
    fn panic_injection_is_exact_and_enables_the_layer() {
        let mut cfg = FaultConfig::none();
        assert!(cfg.is_none());
        cfg.panics = vec![(2, 5), (0, 1)];
        assert!(!cfg.is_none(), "panic specs must enable the fault layer");
        let f = FaultModel::new(cfg, 4);
        assert!(f.client_panics(2, 5));
        assert!(f.client_panics(0, 1));
        assert!(!f.client_panics(2, 6));
        assert!(!f.client_panics(1, 5));
        // The rest of the schedule stays transparent.
        for e in 0..20 {
            for i in 0..4 {
                assert!(f.is_alive(i, e));
                assert_eq!(f.slowdown(i, e), 1.0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "probabilities")]
    fn rejects_bad_probability() {
        let mut cfg = FaultConfig::none();
        cfg.crash_prob = 1.5;
        let _ = FaultModel::new(cfg, 4);
    }
}
