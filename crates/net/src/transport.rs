//! Transport selection and round-level orchestration of [`FlowSim`].
//!
//! The runner speaks to the network through one of two transports:
//!
//! * **Lockstep** — the original accounting: every transfer is priced at
//!   `bytes / bandwidth` with no contention. Byte-identical to the seeded
//!   baselines; the default.
//! * **Flow** — each communication phase (C2S uploads, broadcast
//!   downloads, a migration wave) becomes one [`FlowSim`] in which the
//!   phase's transfers contend for link capacity and run the transport
//!   state machines of [`crate::flow`].
//!
//! This module maps the static [`Topology`] and the epoch's [`FaultModel`]
//! draw onto a per-phase link graph: every client gets a private access
//! link (carrying its per-epoch burst-loss / flap / bandwidth-collapse
//! state) in series with the shared WAN; every migration pair gets its C2C
//! link, with cross-LAN pairs additionally traversing the shared inter-LAN
//! backbone. [`TransportAccum`] folds each phase's outcomes into the
//! run-level [`TransportStats`] and mirrors them to telemetry.

use serde::{Deserialize, Serialize};

use crate::flow::{FlowConfig, FlowOutcome, FlowSim, FlowTrace};
use crate::{FaultModel, Topology};

/// Which transport the runner charges communication through.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub enum TransportConfig {
    /// Nominal `bytes / bandwidth` accounting, no contention (the seeded
    /// baseline path).
    #[default]
    Lockstep,
    /// Event-driven flow simulation with shared links, AIMD and
    /// timeout/retransmission state machines.
    Flow(FlowConfig),
}

impl TransportConfig {
    /// The flow transport with the standard profile.
    pub fn flow(seed: u64) -> Self {
        Self::Flow(FlowConfig::standard(seed))
    }

    /// The flow tuning when the flow transport is active.
    pub fn flow_config(&self) -> Option<&FlowConfig> {
        match self {
            Self::Lockstep => None,
            Self::Flow(cfg) => Some(cfg),
        }
    }

    /// `"lockstep"` or `"flow"` — the CLI spelling.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Lockstep => "lockstep",
            Self::Flow(_) => "flow",
        }
    }
}

/// Result of simulating one C2S phase (uploads or downloads): per-client
/// outcomes in the order the clients were passed, plus phase aggregates.
#[derive(Clone, Debug)]
pub struct PhaseSim {
    /// Outcome per transfer, in input order.
    pub outcomes: Vec<FlowOutcome>,
    /// Time from phase start until the last flow settled.
    pub makespan: f64,
    /// Mean utilization of the links that carried traffic.
    pub mean_link_utilization: f64,
    /// Flow/link trace annotated with topology labels. `None` unless the
    /// phase ran through a `*_traced` entry point with tracing requested.
    pub trace: Option<PhaseTrace>,
}

/// A [`FlowTrace`] plus the topology-level naming the raw simulator cannot
/// know: which link index is the WAN versus which client's access link, and
/// which client (or migration source) owns each flow.
#[derive(Clone, Debug, Default)]
pub struct PhaseTrace {
    /// Stable label per link index: `"wan"`, `"access:<client>"`,
    /// `"backbone"` or `"pair:<src>-<dst>"`.
    pub link_labels: Vec<String>,
    /// Capacity (bytes/s) per link index, after fault scaling.
    pub link_capacity: Vec<f64>,
    /// Owning client per flow index: the uploader/downloader for C2S
    /// phases, the migration source for migration waves.
    pub flow_owners: Vec<usize>,
    /// Link indices each flow traverses, in path order.
    pub flow_paths: Vec<Vec<usize>>,
    /// The raw event/series trace from the simulator.
    pub flow: FlowTrace,
}

/// Simulates `clients`' same-direction C2S transfers of `bytes` each as
/// concurrent flows: private access links (carrying the per-client fault
/// state) in series with the shared WAN. Uploads and downloads are
/// separate phases, so one call covers one direction.
pub fn simulate_c2s(
    topo: &Topology,
    fault: &FaultModel,
    epoch: usize,
    cfg: &FlowConfig,
    clients: &[usize],
    bytes: u64,
) -> PhaseSim {
    simulate_c2s_traced(topo, fault, epoch, cfg, clients, bytes, false)
}

/// [`simulate_c2s`] with optional tracing: when `traced`, the returned
/// [`PhaseSim::trace`] carries labelled flow events and link time series.
/// The simulated outcomes are identical either way.
pub fn simulate_c2s_traced(
    topo: &Topology,
    fault: &FaultModel,
    epoch: usize,
    cfg: &FlowConfig,
    clients: &[usize],
    bytes: u64,
    traced: bool,
) -> PhaseSim {
    let mut sim = FlowSim::new(phase_cfg(cfg, epoch, 1));
    if traced {
        sim.enable_trace();
    }
    let mut pt = PhaseTrace::default();
    let wan_bw = topo.c2s_bandwidth(epoch);
    let wan = sim.add_link(wan_bw, 0.0, topo.c2s_latency(), None);
    if traced {
        pt.link_labels.push("wan".into());
        pt.link_capacity.push(wan_bw);
    }
    let flows: Vec<_> = clients
        .iter()
        .map(|&c| {
            let collapse = fault.link_bw_collapse(c, usize::MAX, epoch);
            let loss = fault.link_burst_loss(c, usize::MAX, epoch);
            let flap = fault.link_flap(c, usize::MAX, epoch);
            let access = sim.add_link(wan_bw * collapse, loss, 0.0, flap);
            if traced {
                pt.link_labels.push(format!("access:{c}"));
                pt.link_capacity.push(wan_bw * collapse);
                pt.flow_owners.push(c);
                pt.flow_paths.push(vec![access.index(), wan.index()]);
            }
            sim.add_flow(&[access, wan], bytes)
        })
        .collect();
    sim.run();
    PhaseSim {
        outcomes: flows.into_iter().map(|f| sim.outcome(f)).collect(),
        makespan: sim.makespan(),
        mean_link_utilization: sim.mean_link_utilization(),
        trace: sim.take_trace().map(|flow| {
            pt.flow = flow;
            pt
        }),
    }
}

/// Simulates a migration wave: each `(src, dst)` move is a flow over its
/// C2C pair link (per-epoch quality, collapse, burst loss and flap
/// applied; a fault-downed link becomes zero-capacity, so its flow stalls
/// into timeouts and fails deterministically). Cross-LAN moves additionally
/// share the inter-LAN backbone.
pub fn simulate_migrations(
    topo: &Topology,
    fault: &FaultModel,
    epoch: usize,
    cfg: &FlowConfig,
    moves: &[(usize, usize)],
    bytes: u64,
) -> PhaseSim {
    simulate_migrations_traced(topo, fault, epoch, cfg, moves, bytes, false)
}

/// [`simulate_migrations`] with optional tracing; see
/// [`simulate_c2s_traced`].
pub fn simulate_migrations_traced(
    topo: &Topology,
    fault: &FaultModel,
    epoch: usize,
    cfg: &FlowConfig,
    moves: &[(usize, usize)],
    bytes: u64,
    traced: bool,
) -> PhaseSim {
    let mut sim = FlowSim::new(phase_cfg(cfg, epoch, 2));
    if traced {
        sim.enable_trace();
    }
    let mut pt = PhaseTrace::default();
    let backbone_bw = topo.backbone_bandwidth(epoch);
    let backbone = sim.add_link(backbone_bw, 0.0, 0.0, None);
    if traced {
        pt.link_labels.push("backbone".into());
        pt.link_capacity.push(backbone_bw);
    }
    let mut pair_links = std::collections::HashMap::new();
    let flows: Vec<_> = moves
        .iter()
        .map(|&(src, dst)| {
            let key = (src.min(dst), src.max(dst));
            let pair = *pair_links.entry(key).or_insert_with(|| {
                let bw = if fault.link_up(src, dst, epoch) {
                    topo.c2c_bandwidth(src, dst, epoch)
                        * fault.link_quality(src, dst, epoch)
                        * fault.link_bw_collapse(src, dst, epoch)
                } else {
                    0.0
                };
                let loss = fault.link_burst_loss(src, dst, epoch);
                let flap = fault.link_flap(src, dst, epoch);
                let id = sim.add_link(bw, loss, topo.c2c_latency(src, dst), flap);
                if traced {
                    pt.link_labels.push(format!("pair:{}-{}", key.0, key.1));
                    pt.link_capacity.push(bw);
                }
                id
            });
            let path: Vec<_> =
                if topo.same_lan(src, dst) { vec![pair] } else { vec![pair, backbone] };
            if traced {
                pt.flow_owners.push(src);
                pt.flow_paths.push(path.iter().map(|l| l.index()).collect());
            }
            sim.add_flow(&path, bytes)
        })
        .collect();
    sim.run();
    PhaseSim {
        outcomes: flows.into_iter().map(|f| sim.outcome(f)).collect(),
        makespan: sim.makespan(),
        mean_link_utilization: sim.mean_link_utilization(),
        trace: sim.take_trace().map(|flow| {
            pt.flow = flow;
            pt
        }),
    }
}

/// Domain-separates the loss schedule per `(epoch, phase)` so each phase
/// rolls independent losses from the same configured seed.
fn phase_cfg(cfg: &FlowConfig, epoch: usize, phase: u64) -> FlowConfig {
    let mut out = *cfg;
    out.seed =
        cfg.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add((epoch as u64) << 8 | phase);
    out
}

/// Per-round upload deadline: `factor` times the median *completed* upload
/// time. Infinite when nothing completed (the round then waits for every
/// flow to settle) or when the deadline is disabled.
pub fn upload_deadline(outcomes: &[FlowOutcome], factor: f64) -> f64 {
    if !factor.is_finite() {
        return f64::INFINITY;
    }
    let mut finished: Vec<f64> =
        outcomes.iter().filter(|o| o.completed).map(|o| o.finish).collect();
    if finished.is_empty() {
        return f64::INFINITY;
    }
    finished.sort_by(f64::total_cmp);
    factor * finished[finished.len() / 2]
}

/// Run-level transport aggregates, surfaced in `RunMetrics`. All zeros
/// under the lockstep transport. Byte fields satisfy the same conservation
/// rule as [`FlowOutcome`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TransportStats {
    /// Transfers simulated as flows.
    pub flows: u64,
    /// Flows that exhausted their timeout budget and failed.
    pub failed_flows: u64,
    /// Segments lost and retransmitted.
    pub retransmits: u64,
    /// Retransmission timeouts fired (stalls with no capacity).
    pub timeouts: u64,
    /// Bytes burned by retransmissions.
    pub retransmit_bytes: u64,
    /// Median per-flow queueing delay in seconds.
    pub queue_delay_p50: f64,
    /// 99th-percentile per-flow queueing delay in seconds.
    pub queue_delay_p99: f64,
    /// Mean link utilization across simulated phases.
    pub mean_link_utilization: f64,
    /// Uploads that completed after their round's deadline.
    pub late_uploads: u64,
    /// Late uploads folded into a later aggregation with a staleness
    /// discount.
    pub stale_updates_folded: u64,
    /// Late uploads dropped because they aged past the staleness window.
    pub stale_updates_dropped: u64,
}

impl TransportStats {
    /// Whether any flow was simulated (false for lockstep runs).
    pub fn any(&self) -> bool {
        self.flows > 0
    }
}

/// Checkpoint capture of a [`TransportAccum`]: the running stats plus the
/// raw per-flow queue-delay and per-phase utilization samples the final
/// percentiles are computed from.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TransportAccumState {
    /// Running counter totals.
    pub stats: TransportStats,
    /// Per-flow queueing delays seen so far.
    pub queue_delays: Vec<f64>,
    /// Per-phase mean link utilizations seen so far.
    pub utils: Vec<f64>,
}

/// Accumulates per-phase [`PhaseSim`] results into [`TransportStats`] over
/// a run, mirroring counters and gauges to telemetry as it goes.
#[derive(Clone, Debug, Default)]
pub struct TransportAccum {
    stats: TransportStats,
    queue_delays: Vec<f64>,
    utils: Vec<f64>,
}

impl TransportAccum {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one simulated phase in.
    pub fn absorb(&mut self, phase: &PhaseSim) {
        let reg = fedmigr_telemetry::global().registry();
        for o in &phase.outcomes {
            self.stats.flows += 1;
            self.stats.retransmits += o.retransmits;
            self.stats.timeouts += o.timeouts;
            self.stats.retransmit_bytes += o.retransmit_bytes;
            if !o.completed {
                self.stats.failed_flows += 1;
            }
            self.queue_delays.push(o.queue_delay);
            reg.histogram(fedmigr_telemetry::names::QUEUE_DELAY_SECONDS, &[])
                .observe(o.queue_delay);
        }
        if !phase.outcomes.is_empty() {
            self.utils.push(phase.mean_link_utilization);
            reg.gauge(fedmigr_telemetry::names::LINK_UTILIZATION, &[])
                .set(phase.mean_link_utilization);
            let retx: u64 = phase.outcomes.iter().map(|o| o.retransmits).sum();
            let touts: u64 = phase.outcomes.iter().map(|o| o.timeouts).sum();
            reg.counter(fedmigr_telemetry::names::RETRANSMITS_TOTAL, &[]).add(retx);
            reg.counter(fedmigr_telemetry::names::FLOW_TIMEOUTS_TOTAL, &[]).add(touts);
        }
    }

    /// Records an upload that finished after its round deadline.
    pub fn note_late_upload(&mut self) {
        self.stats.late_uploads += 1;
    }

    /// Records `n` stale updates folded into an aggregation.
    pub fn note_stale_folded(&mut self, n: u64) {
        self.stats.stale_updates_folded += n;
    }

    /// Records `n` stale updates dropped past the staleness window.
    pub fn note_stale_dropped(&mut self, n: u64) {
        self.stats.stale_updates_dropped += n;
    }

    /// Cumulative retransmits so far (for per-epoch bookkeeping).
    pub fn retransmits(&self) -> u64 {
        self.stats.retransmits
    }

    /// Cumulative late uploads so far (for per-epoch bookkeeping).
    pub fn late_uploads(&self) -> u64 {
        self.stats.late_uploads
    }

    /// Captures the accumulator for a run checkpoint.
    pub fn export_state(&self) -> TransportAccumState {
        TransportAccumState {
            stats: self.stats,
            queue_delays: self.queue_delays.clone(),
            utils: self.utils.clone(),
        }
    }

    /// Restores state captured by [`TransportAccum::export_state`]. Sets
    /// fields directly, bypassing `absorb` so restore does not re-emit
    /// telemetry for already-counted phases.
    pub fn import_state(&mut self, state: TransportAccumState) {
        self.stats = state.stats;
        self.queue_delays = state.queue_delays;
        self.utils = state.utils;
    }

    /// Finalizes the run-level stats (computes the queue-delay percentiles
    /// and mean utilization).
    pub fn finish(&self) -> TransportStats {
        let mut out = self.stats;
        if !self.queue_delays.is_empty() {
            let mut d = self.queue_delays.clone();
            d.sort_by(f64::total_cmp);
            out.queue_delay_p50 = d[d.len() / 2];
            out.queue_delay_p99 = d[((d.len() as f64 * 0.99) as usize).min(d.len() - 1)];
        }
        if !self.utils.is_empty() {
            out.mean_link_utilization = self.utils.iter().sum::<f64>() / self.utils.len() as f64;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FaultConfig, TopologyConfig};

    fn topo() -> Topology {
        Topology::new(&TopologyConfig::c10_sim(42))
    }

    #[test]
    fn transport_config_names_and_default() {
        assert_eq!(TransportConfig::default().name(), "lockstep");
        assert_eq!(TransportConfig::flow(3).name(), "flow");
        assert!(TransportConfig::default().flow_config().is_none());
        assert!(TransportConfig::flow(3).flow_config().is_some());
    }

    #[test]
    fn concurrent_uploads_contend_for_the_wan() {
        let t = topo();
        let f = FaultModel::none(10);
        let cfg = FlowConfig::standard(5);
        let one = simulate_c2s(&t, &f, 0, &cfg, &[0], 1_000_000);
        let ten: Vec<usize> = (0..10).collect();
        let all = simulate_c2s(&t, &f, 0, &cfg, &ten, 1_000_000);
        assert!(one.outcomes[0].completed && all.outcomes.iter().all(|o| o.completed));
        assert!(
            all.makespan > 5.0 * one.makespan,
            "10 concurrent uploads must be far slower than one: {} vs {}",
            all.makespan,
            one.makespan
        );
    }

    #[test]
    fn faulted_migration_link_fails_its_flow_only() {
        let t = topo();
        // Crank link outages until a move lands on a downed link.
        let f = FaultModel::new(
            FaultConfig { link_outage_prob: 0.5, ..FaultConfig::edge_churn(0.3, 7) },
            10,
        );
        let cfg = FlowConfig::standard(5);
        let moves: Vec<(usize, usize)> = (0..5).map(|i| (i, i + 5)).collect();
        let mut seen_fail = false;
        let mut seen_ok = false;
        for epoch in 0..20 {
            let sim = simulate_migrations(&t, &f, epoch, &cfg, &moves, 300_000);
            for (o, &(s, d)) in sim.outcomes.iter().zip(&moves) {
                if f.link_up(s, d, epoch) {
                    seen_ok |= o.completed;
                } else {
                    assert!(!o.completed, "downed link {s}<->{d} must fail its flow");
                    seen_fail = true;
                }
            }
        }
        assert!(seen_fail && seen_ok, "need both outcomes exercised");
    }

    #[test]
    fn cross_lan_moves_share_the_backbone() {
        let t = topo();
        let f = FaultModel::none(10);
        let cfg = FlowConfig::standard(5);
        // Many concurrent cross-LAN moves: per-pair links are disjoint, so
        // any slowdown beyond the slowest pair is backbone contention.
        let moves: Vec<(usize, usize)> = vec![(0, 4), (1, 5), (2, 6), (3, 7)];
        let together = simulate_migrations(&t, &f, 0, &cfg, &moves, 2_000_000);
        let solo_worst = moves
            .iter()
            .map(|&(s, d)| simulate_migrations(&t, &f, 0, &cfg, &[(s, d)], 2_000_000).makespan)
            .fold(0.0, f64::max);
        assert!(together.outcomes.iter().all(|o| o.completed));
        assert!(
            together.makespan > solo_worst * 1.05,
            "backbone sharing must slow the wave: {} vs {}",
            together.makespan,
            solo_worst
        );
    }

    #[test]
    fn traced_phases_match_untraced_and_label_every_link() {
        let t = topo();
        let f = FaultModel::new(FaultConfig::edge_churn(0.3, 7), 10);
        let cfg = FlowConfig::standard(5);
        let clients: Vec<usize> = (0..6).collect();

        let plain = simulate_c2s(&t, &f, 2, &cfg, &clients, 400_000);
        let traced = simulate_c2s_traced(&t, &f, 2, &cfg, &clients, 400_000, true);
        assert!(plain.trace.is_none());
        assert_eq!(plain.outcomes, traced.outcomes);
        assert_eq!(plain.makespan, traced.makespan);
        let pt = traced.trace.expect("trace requested");
        assert_eq!(pt.link_labels[0], "wan");
        assert_eq!(pt.link_labels.len(), clients.len() + 1);
        assert_eq!(pt.link_labels.len(), pt.link_capacity.len());
        assert_eq!(pt.flow_owners, clients);
        assert_eq!(pt.link_labels.len(), pt.flow.links.len());
        for (i, path) in pt.flow_paths.iter().enumerate() {
            assert_eq!(path, &[i + 1, 0], "client flow crosses access then wan");
        }
        assert!(!pt.flow.events.is_empty());

        let moves = vec![(0, 4), (1, 5), (2, 3)];
        let plain = simulate_migrations(&t, &f, 2, &cfg, &moves, 300_000);
        let traced = simulate_migrations_traced(&t, &f, 2, &cfg, &moves, 300_000, true);
        assert_eq!(plain.outcomes, traced.outcomes);
        let pt = traced.trace.expect("trace requested");
        assert_eq!(pt.link_labels[0], "backbone");
        assert!(pt.link_labels.iter().skip(1).all(|l| l.starts_with("pair:")));
        assert_eq!(pt.flow_owners, vec![0, 1, 2]);
        for path in &pt.flow_paths {
            assert!(pt.link_labels.len() > *path.iter().max().unwrap());
        }
    }

    #[test]
    fn deadline_is_a_median_multiple() {
        let mk = |finish: f64, completed: bool| FlowOutcome {
            completed,
            finish,
            ..FlowOutcome::default()
        };
        let outs = vec![mk(1.0, true), mk(2.0, true), mk(9.0, true), mk(50.0, false)];
        assert_eq!(upload_deadline(&outs, 3.0), 6.0);
        assert_eq!(upload_deadline(&outs, f64::INFINITY), f64::INFINITY);
        assert_eq!(upload_deadline(&[mk(5.0, false)], 3.0), f64::INFINITY);
    }

    #[test]
    fn accum_summarizes_phases() {
        let mut acc = TransportAccum::new();
        let phase = PhaseSim {
            outcomes: vec![
                FlowOutcome {
                    completed: true,
                    retransmits: 2,
                    retransmit_bytes: 100,
                    queue_delay: 0.5,
                    ..FlowOutcome::default()
                },
                FlowOutcome { completed: false, timeouts: 3, ..FlowOutcome::default() },
            ],
            makespan: 1.0,
            mean_link_utilization: 0.8,
            trace: None,
        };
        acc.absorb(&phase);
        acc.note_late_upload();
        acc.note_stale_folded(2);
        acc.note_stale_dropped(1);
        let s = acc.finish();
        assert!(s.any());
        assert_eq!(s.flows, 2);
        assert_eq!(s.failed_flows, 1);
        assert_eq!(s.retransmits, 2);
        assert_eq!(s.timeouts, 3);
        assert_eq!(s.retransmit_bytes, 100);
        assert_eq!(s.late_uploads, 1);
        assert_eq!(s.stale_updates_folded, 2);
        assert_eq!(s.stale_updates_dropped, 1);
        assert_eq!(s.queue_delay_p50, 0.5);
        assert!((s.mean_link_utilization - 0.8).abs() < 1e-12);
        assert!(!TransportStats::default().any());
    }
}
