use serde::{Deserialize, Serialize};

/// The resource budgets `B_c` (computation, sample-passes) and `B_b`
/// (bandwidth, bytes) of the FLMM problem (Eq. 16). Infinite budgets model
/// unconstrained runs.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ResourceBudget {
    /// Computation budget `B_c` in sample-passes.
    pub compute: f64,
    /// Bandwidth budget `B_b` in bytes.
    pub bandwidth: f64,
}

impl ResourceBudget {
    /// An unconstrained budget.
    pub fn unlimited() -> Self {
        Self { compute: f64::INFINITY, bandwidth: f64::INFINITY }
    }

    /// A bandwidth-only budget (compute unconstrained) — the Fig. 9 sweep.
    pub fn bandwidth_only(bytes: f64) -> Self {
        Self { compute: f64::INFINITY, bandwidth: bytes }
    }
}

/// Traffic totals split the way the paper reports them.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TrafficBreakdown {
    /// Client<->server bytes over the WAN (model distribution, uploads).
    pub c2s: u64,
    /// Client->client bytes within a LAN (local migrations).
    pub c2c_local: u64,
    /// Client->client bytes across LANs (global migrations).
    pub c2c_global: u64,
}

impl TrafficBreakdown {
    /// All bytes moved.
    pub fn total(&self) -> u64 {
        self.c2s + self.c2c_local + self.c2c_global
    }

    /// Bytes that crossed the scarce WAN/backbone: C2S plus cross-LAN C2C.
    /// This is the paper's "global communication" figure.
    pub fn global(&self) -> u64 {
        self.c2s + self.c2c_global
    }
}

/// Accumulates resource consumption against a [`ResourceBudget`].
#[derive(Clone, Debug)]
pub struct ResourceMeter {
    budget: ResourceBudget,
    traffic: TrafficBreakdown,
    /// Retransmission overhead put on the wire by the flow transport.
    /// Charged against the bandwidth budget but kept out of the payload
    /// [`TrafficBreakdown`], so payload totals stay comparable across
    /// transports. Always zero under the lockstep transport.
    overhead: u64,
    /// Simulated transfer seconds (queueing + retransmits included) under
    /// the flow transport; zero under lockstep, where transfers are priced
    /// at nominal latency and the meter has nothing extra to say.
    transfer_seconds: f64,
    compute_cost: f64,
}

impl ResourceMeter {
    /// Creates a meter against `budget`.
    pub fn new(budget: ResourceBudget) -> Self {
        Self {
            budget,
            traffic: TrafficBreakdown::default(),
            overhead: 0,
            transfer_seconds: 0.0,
            compute_cost: 0.0,
        }
    }

    /// Records C2S traffic (counted against the bandwidth budget).
    pub fn record_c2s(&mut self, bytes: u64) {
        self.traffic.c2s += bytes;
        count_bytes("c2s", bytes);
    }

    /// Records a C2C transfer; `local` marks intra-LAN migrations.
    pub fn record_c2c(&mut self, bytes: u64, local: bool) {
        if local {
            self.traffic.c2c_local += bytes;
            count_bytes("c2c_local", bytes);
        } else {
            self.traffic.c2c_global += bytes;
            count_bytes("c2c_global", bytes);
        }
    }

    /// Records retransmission overhead bytes from the flow transport.
    /// Counted against the bandwidth budget (the bytes really crossed the
    /// wire) but not against the payload traffic breakdown.
    pub fn record_overhead(&mut self, bytes: u64) {
        self.overhead += bytes;
        count_bytes("overhead", bytes);
    }

    /// Records the simulated duration of a communication phase (queueing
    /// and retransmission time included) under the flow transport.
    pub fn record_transfer_seconds(&mut self, seconds: f64) {
        assert!(seconds >= 0.0 && seconds.is_finite(), "bad phase duration {seconds}");
        self.transfer_seconds += seconds;
    }

    /// Records computation cost in sample-passes.
    pub fn record_compute(&mut self, cost: f64) {
        self.compute_cost += cost;
    }

    /// Traffic accumulated so far.
    pub fn traffic(&self) -> TrafficBreakdown {
        self.traffic
    }

    /// Retransmission overhead accumulated so far (flow transport only).
    pub fn overhead(&self) -> u64 {
        self.overhead
    }

    /// Simulated transfer seconds accumulated so far (flow transport only).
    pub fn transfer_seconds(&self) -> f64 {
        self.transfer_seconds
    }

    /// Every byte charged against the bandwidth budget: payload traffic
    /// plus retransmission overhead.
    fn billed_bytes(&self) -> u64 {
        self.traffic.total() + self.overhead
    }

    /// Computation cost accumulated so far.
    pub fn compute_cost(&self) -> f64 {
        self.compute_cost
    }

    /// Remaining bandwidth budget (fraction of `B_b`), clamped to `[0, 1]`;
    /// 1 for unlimited budgets. This is part of the DRL state `G_t`.
    pub fn bandwidth_remaining_frac(&self) -> f64 {
        if self.budget.bandwidth.is_infinite() {
            return 1.0;
        }
        (1.0 - self.billed_bytes() as f64 / self.budget.bandwidth).clamp(0.0, 1.0)
    }

    /// Remaining compute budget fraction, clamped to `[0, 1]`.
    pub fn compute_remaining_frac(&self) -> f64 {
        if self.budget.compute.is_infinite() {
            return 1.0;
        }
        (1.0 - self.compute_cost / self.budget.compute).clamp(0.0, 1.0)
    }

    /// Whether either budget is exhausted (`min G_T <= 0`, Eq. 18).
    pub fn exhausted(&self) -> bool {
        self.billed_bytes() as f64 >= self.budget.bandwidth
            || self.compute_cost >= self.budget.compute
    }

    /// The configured budget.
    pub fn budget(&self) -> ResourceBudget {
        self.budget
    }

    /// Captures the meter's accumulated consumption for a run checkpoint
    /// (the budget itself is rebuilt from config).
    pub fn export_state(&self) -> MeterState {
        MeterState {
            traffic: self.traffic,
            overhead: self.overhead,
            transfer_seconds: self.transfer_seconds,
            compute_cost: self.compute_cost,
        }
    }

    /// Restores consumption captured by [`ResourceMeter::export_state`].
    /// Sets fields directly — deliberately bypassing the `record_*` paths so
    /// restore does not double-count into telemetry byte counters.
    pub fn import_state(&mut self, state: MeterState) {
        self.traffic = state.traffic;
        self.overhead = state.overhead;
        self.transfer_seconds = state.transfer_seconds;
        self.compute_cost = state.compute_cost;
    }
}

/// Checkpoint capture of a [`ResourceMeter`]'s accumulated consumption.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MeterState {
    /// Payload traffic accumulated so far.
    pub traffic: TrafficBreakdown,
    /// Retransmission overhead bytes.
    pub overhead: u64,
    /// Simulated transfer seconds (flow transport).
    pub transfer_seconds: f64,
    /// Computation cost in sample-passes.
    pub compute_cost: f64,
}

/// Mirrors every meter charge into the `fedmigr_net_bytes_total{path}`
/// telemetry counter. Side-channel only: the meter's own totals (which feed
/// budgets and `RunMetrics`) are the `TrafficBreakdown` fields above.
fn count_bytes(path: &'static str, bytes: u64) {
    fedmigr_telemetry::global()
        .registry()
        .counter("fedmigr_net_bytes_total", &[("path", path)])
        .add(bytes);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_totals() {
        let t = TrafficBreakdown { c2s: 10, c2c_local: 5, c2c_global: 3 };
        assert_eq!(t.total(), 18);
        assert_eq!(t.global(), 13);
    }

    #[test]
    fn meter_tracks_and_exhausts() {
        let mut m = ResourceMeter::new(ResourceBudget { compute: 100.0, bandwidth: 100.0 });
        m.record_c2s(40);
        m.record_c2c(20, true);
        m.record_compute(50.0);
        assert!(!m.exhausted());
        assert!((m.bandwidth_remaining_frac() - 0.4).abs() < 1e-12);
        assert!((m.compute_remaining_frac() - 0.5).abs() < 1e-12);
        m.record_c2c(40, false);
        assert!(m.exhausted());
        assert_eq!(m.bandwidth_remaining_frac(), 0.0);
    }

    #[test]
    fn overhead_bytes_bill_the_budget_but_not_the_breakdown() {
        let mut m = ResourceMeter::new(ResourceBudget { compute: f64::INFINITY, bandwidth: 100.0 });
        m.record_c2s(60);
        m.record_overhead(30);
        m.record_transfer_seconds(1.5);
        assert_eq!(m.traffic().total(), 60, "payload breakdown excludes overhead");
        assert_eq!(m.overhead(), 30);
        assert!((m.bandwidth_remaining_frac() - 0.1).abs() < 1e-12);
        assert!(!m.exhausted());
        m.record_overhead(10);
        assert!(m.exhausted(), "overhead must exhaust the budget like payload");
        assert!((m.transfer_seconds() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn unlimited_budget_never_exhausts() {
        let mut m = ResourceMeter::new(ResourceBudget::unlimited());
        m.record_c2s(u64::MAX / 2);
        m.record_compute(1e18);
        assert!(!m.exhausted());
        assert_eq!(m.bandwidth_remaining_frac(), 1.0);
    }
}
