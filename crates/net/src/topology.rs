use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Speed class of a C2C link, matching Fig. 8's fast/moderate/slow split.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkClass {
    /// Intra-LAN or otherwise high-bandwidth link.
    Fast,
    /// Mid-speed cross-LAN link.
    Moderate,
    /// Congested/low-bandwidth cross-LAN link (may be slower than C2S).
    Slow,
}

/// Configuration for building a [`Topology`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TopologyConfig {
    /// Number of clients in each LAN; the sum is the client count `K`.
    pub lan_sizes: Vec<usize>,
    /// C2S (WAN) bandwidth in bytes/second. The paper's test-bed uses a
    /// ~50 Mbps WAN link, i.e. 6.25e6 B/s.
    pub c2s_bandwidth: f64,
    /// Bandwidth of intra-LAN C2C links (bytes/second).
    pub lan_bandwidth: f64,
    /// Bandwidth of `Moderate` cross-LAN C2C links (bytes/second).
    pub cross_moderate_bandwidth: f64,
    /// Bandwidth of `Slow` cross-LAN C2C links (bytes/second).
    pub cross_slow_bandwidth: f64,
    /// Probability that a cross-LAN link is `Slow` (rest are `Moderate`).
    pub slow_fraction: f64,
    /// Aggregate capacity of the inter-LAN backbone in bytes/second. Only
    /// the event-driven flow transport uses it: concurrent cross-LAN
    /// transfers share this capacity on top of their per-pair link rates.
    /// The lockstep path ignores it.
    pub backbone_bandwidth: f64,
    /// Relative amplitude of per-epoch multiplicative bandwidth jitter in
    /// `[0, 1)`; 0 disables time variation.
    pub jitter: f64,
    /// One-way propagation latency of the WAN (C2S) path in seconds.
    pub c2s_latency: f64,
    /// One-way propagation latency of C2C paths in seconds (LAN paths are
    /// treated as latency-free relative to this).
    pub c2c_latency: f64,
    /// Seed for link-class assignment and jitter.
    pub seed: u64,
}

impl TopologyConfig {
    /// The paper's simulation defaults: 50 Mbps WAN, 400 Mbps LAN,
    /// 100 Mbps moderate / 16 Mbps slow cross-LAN links, 30% slow.
    pub fn default_edge(lan_sizes: Vec<usize>, seed: u64) -> Self {
        Self {
            lan_sizes,
            c2s_bandwidth: 6.25e6,
            lan_bandwidth: 5.0e7,
            cross_moderate_bandwidth: 1.25e7,
            cross_slow_bandwidth: 2.0e6,
            slow_fraction: 0.3,
            backbone_bandwidth: 2.5e7,
            jitter: 0.0,
            c2s_latency: 0.0,
            c2c_latency: 0.0,
            seed,
        }
    }

    /// Three LANs of sizes 4/3/3 — the paper's CIFAR-10 simulation layout.
    pub fn c10_sim(seed: u64) -> Self {
        Self::default_edge(vec![4, 3, 3], seed)
    }

    /// Five LANs of 4 clients each — the paper's CIFAR-100 layout.
    pub fn c100_sim(seed: u64) -> Self {
        Self::default_edge(vec![4; 5], seed)
    }
}

/// A static MEC topology: clients grouped into LANs behind one edge server,
/// with a seeded bandwidth matrix for client-to-client links.
#[derive(Clone, Debug)]
pub struct Topology {
    lan_of: Vec<usize>,
    c2s_bandwidth: f64,
    backbone_bandwidth: f64,
    c2c_bandwidth: Vec<f64>,
    link_class: Vec<LinkClass>,
    c2s_latency: f64,
    c2c_latency: f64,
    jitter: f64,
    seed: u64,
    k: usize,
}

impl Topology {
    /// Builds a topology from `config`.
    ///
    /// # Panics
    /// Panics if there are no clients or any bandwidth is non-positive.
    pub fn new(config: &TopologyConfig) -> Self {
        let k: usize = config.lan_sizes.iter().sum();
        assert!(k > 0, "topology needs at least one client");
        assert!(
            config.c2s_bandwidth > 0.0
                && config.lan_bandwidth > 0.0
                && config.cross_moderate_bandwidth > 0.0
                && config.cross_slow_bandwidth > 0.0
                && config.backbone_bandwidth > 0.0,
            "bandwidths must be positive"
        );
        assert!((0.0..1.0).contains(&config.jitter), "jitter must be in [0, 1)");
        let mut lan_of = Vec::with_capacity(k);
        for (lan, &size) in config.lan_sizes.iter().enumerate() {
            lan_of.extend(std::iter::repeat_n(lan, size));
        }
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut c2c = vec![0.0f64; k * k];
        let mut class = vec![LinkClass::Fast; k * k];
        for i in 0..k {
            for j in (i + 1)..k {
                let (bw, cls) = if lan_of[i] == lan_of[j] {
                    (config.lan_bandwidth, LinkClass::Fast)
                } else if rng.random::<f64>() < config.slow_fraction {
                    (config.cross_slow_bandwidth, LinkClass::Slow)
                } else {
                    (config.cross_moderate_bandwidth, LinkClass::Moderate)
                };
                c2c[i * k + j] = bw;
                c2c[j * k + i] = bw;
                class[i * k + j] = cls;
                class[j * k + i] = cls;
            }
        }
        assert!(config.c2s_latency >= 0.0 && config.c2c_latency >= 0.0);
        Self {
            lan_of,
            c2s_bandwidth: config.c2s_bandwidth,
            backbone_bandwidth: config.backbone_bandwidth,
            c2c_bandwidth: c2c,
            link_class: class,
            c2s_latency: config.c2s_latency,
            c2c_latency: config.c2c_latency,
            jitter: config.jitter,
            seed: config.seed,
            k,
        }
    }

    /// Number of clients `K`.
    pub fn num_clients(&self) -> usize {
        self.k
    }

    /// LAN index of client `i`.
    pub fn lan_of(&self, i: usize) -> usize {
        self.lan_of[i]
    }

    /// Whether clients `i` and `j` share a LAN (a migration between them is
    /// a *local* migration in the paper's terms).
    pub fn same_lan(&self, i: usize, j: usize) -> bool {
        self.lan_of[i] == self.lan_of[j]
    }

    /// C2S (WAN) bandwidth in bytes/second, with per-epoch jitter applied.
    pub fn c2s_bandwidth(&self, epoch: usize) -> f64 {
        self.c2s_bandwidth * self.jitter_factor(epoch, usize::MAX)
    }

    /// Aggregate inter-LAN backbone capacity in bytes/second, with
    /// per-epoch jitter applied. Shared by all concurrent cross-LAN flows
    /// under the flow transport.
    pub fn backbone_bandwidth(&self, epoch: usize) -> f64 {
        self.backbone_bandwidth * self.jitter_factor(epoch, usize::MAX - 1)
    }

    /// C2C bandwidth between clients `i` and `j` at `epoch`, in
    /// bytes/second, or `None` for the degenerate `i == j` "link" (a
    /// self-transfer costs nothing; callers should skip it).
    pub fn try_c2c_bandwidth(&self, i: usize, j: usize, epoch: usize) -> Option<f64> {
        if i == j {
            return None;
        }
        Some(self.c2c_bandwidth[i * self.k + j] * self.jitter_factor(epoch, i * self.k + j))
    }

    /// C2C bandwidth between clients `i` and `j` at `epoch`, in
    /// bytes/second.
    ///
    /// # Panics
    /// Panics if `i == j`, which indicates a bookkeeping bug upstream; use
    /// [`Self::try_c2c_bandwidth`] on paths where that can occur.
    pub fn c2c_bandwidth(&self, i: usize, j: usize, epoch: usize) -> f64 {
        self.try_c2c_bandwidth(i, j, epoch).expect("self-transfer has no link")
    }

    /// One-way propagation latency of the C2S path in seconds.
    pub fn c2s_latency(&self) -> f64 {
        self.c2s_latency
    }

    /// One-way propagation latency of the `i -> j` path in seconds
    /// (zero for intra-LAN links).
    pub fn c2c_latency(&self, i: usize, j: usize) -> f64 {
        if self.same_lan(i, j) {
            0.0
        } else {
            self.c2c_latency
        }
    }

    /// Speed class of the `i -> j` link.
    pub fn link_class(&self, i: usize, j: usize) -> LinkClass {
        assert_ne!(i, j, "self-link has no class");
        self.link_class[i * self.k + j]
    }

    /// Deterministic multiplicative jitter in `[1 - jitter, 1 + jitter]`
    /// derived from `(seed, epoch, link)`.
    fn jitter_factor(&self, epoch: usize, link: usize) -> f64 {
        if self.jitter == 0.0 {
            return 1.0;
        }
        let mut x = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(epoch as u64)
            .wrapping_mul(0xBF58_476D_1CE4_E5B9)
            .wrapping_add(link as u64);
        x ^= x >> 30;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        let unit = (x >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        1.0 + self.jitter * (2.0 * unit - 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Topology {
        Topology::new(&TopologyConfig::c10_sim(42))
    }

    #[test]
    fn lan_membership_matches_sizes() {
        let t = topo();
        assert_eq!(t.num_clients(), 10);
        assert_eq!(t.lan_of(0), 0);
        assert_eq!(t.lan_of(3), 0);
        assert_eq!(t.lan_of(4), 1);
        assert_eq!(t.lan_of(7), 2);
        assert!(t.same_lan(0, 3));
        assert!(!t.same_lan(3, 4));
    }

    #[test]
    fn intra_lan_links_are_fast_and_faster_than_wan() {
        let t = topo();
        assert_eq!(t.link_class(0, 1), LinkClass::Fast);
        assert!(t.c2c_bandwidth(0, 1, 0) > t.c2s_bandwidth(0));
    }

    #[test]
    fn cross_lan_links_are_moderate_or_slow_and_symmetric() {
        let t = topo();
        for i in 0..4 {
            for j in 4..10 {
                let cls = t.link_class(i, j);
                assert!(cls == LinkClass::Moderate || cls == LinkClass::Slow);
                assert_eq!(t.c2c_bandwidth(i, j, 3), t.c2c_bandwidth(j, i, 3));
            }
        }
    }

    #[test]
    fn slow_fraction_produces_some_slow_links() {
        let t = Topology::new(&TopologyConfig::default_edge(vec![1; 20], 7));
        let mut slow = 0;
        let mut total = 0;
        for i in 0..20 {
            for j in (i + 1)..20 {
                total += 1;
                if t.link_class(i, j) == LinkClass::Slow {
                    slow += 1;
                }
            }
        }
        let frac = slow as f64 / total as f64;
        assert!(frac > 0.15 && frac < 0.45, "slow fraction {frac}");
    }

    #[test]
    fn jitter_varies_with_epoch_but_is_bounded() {
        let mut cfg = TopologyConfig::c10_sim(1);
        cfg.jitter = 0.2;
        let t = Topology::new(&cfg);
        let base = Topology::new(&TopologyConfig::c10_sim(1)).c2c_bandwidth(0, 5, 0);
        let mut distinct = std::collections::HashSet::new();
        for e in 0..10 {
            let bw = t.c2c_bandwidth(0, 5, e);
            assert!(bw >= base * 0.8 - 1.0 && bw <= base * 1.2 + 1.0);
            distinct.insert(bw.to_bits());
        }
        assert!(distinct.len() > 5, "jitter should vary across epochs");
    }

    #[test]
    fn deterministic_in_seed() {
        let a = Topology::new(&TopologyConfig::c10_sim(9));
        let b = Topology::new(&TopologyConfig::c10_sim(9));
        for i in 0..10 {
            for j in 0..10 {
                if i != j {
                    assert_eq!(a.link_class(i, j), b.link_class(i, j));
                }
            }
        }
    }

    #[test]
    fn latency_applies_to_cross_lan_paths_only() {
        let mut cfg = TopologyConfig::c10_sim(2);
        cfg.c2s_latency = 0.05;
        cfg.c2c_latency = 0.02;
        let t = Topology::new(&cfg);
        assert_eq!(t.c2s_latency(), 0.05);
        assert_eq!(t.c2c_latency(0, 1), 0.0, "intra-LAN path has no WAN latency");
        assert_eq!(t.c2c_latency(0, 5), 0.02);
    }

    #[test]
    #[should_panic(expected = "self-transfer")]
    fn self_transfer_panics() {
        let _ = topo().c2c_bandwidth(2, 2, 0);
    }
}
