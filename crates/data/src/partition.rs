//! Client data partitioners reproducing every layout in the paper.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::Dataset;

/// IID partition: samples are shuffled and dealt evenly to `k` clients.
pub fn partition_iid(ds: &Dataset, k: usize, seed: u64) -> Vec<Vec<usize>> {
    assert!(k > 0, "need at least one client");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut indices: Vec<usize> = (0..ds.len()).collect();
    indices.shuffle(&mut rng);
    deal(&indices, k)
}

/// Shard partition: samples are sorted by label, split into
/// `k * classes_per_client` shards, and each client receives
/// `classes_per_client` shards. With `classes_per_client = 1` and `k` equal
/// to the class count this is the paper's "one class per client" CIFAR-10
/// setting; with 5 shards over 20 clients it is the CIFAR-100 setting.
pub fn partition_shards(
    ds: &Dataset,
    k: usize,
    classes_per_client: usize,
    seed: u64,
) -> Vec<Vec<usize>> {
    assert!(k > 0 && classes_per_client > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut by_label: Vec<usize> = (0..ds.len()).collect();
    by_label.sort_by_key(|&i| ds.label(i));
    let num_shards = k * classes_per_client;
    let shard_size = ds.len() / num_shards;
    assert!(shard_size > 0, "too many shards for dataset size");
    let mut shard_ids: Vec<usize> = (0..num_shards).collect();
    shard_ids.shuffle(&mut rng);
    let mut out = vec![Vec::new(); k];
    for (pos, &shard) in shard_ids.iter().enumerate() {
        let client = pos / classes_per_client;
        let start = shard * shard_size;
        let end = if shard == num_shards - 1 { ds.len() } else { start + shard_size };
        out[client].extend_from_slice(&by_label[start..end]);
    }
    out
}

/// Dominant-class partition (test-bed CIFAR-10, Sec. IV-D): client `i` holds
/// `p` (fraction, e.g. 0.8) of the samples of class `i mod L`, and the
/// remainder of every class is spread uniformly over all clients.
///
/// `p = 1/K` reduces to (approximately) IID, matching the paper's note that
/// `p = 10%` with 10 clients is the IID special case.
pub fn partition_dominant(ds: &Dataset, k: usize, p: f64, seed: u64) -> Vec<Vec<usize>> {
    assert!(k > 0);
    assert!((0.0..=1.0).contains(&p), "dominant fraction must be in [0, 1]");
    let l = ds.num_classes();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); l];
    for i in 0..ds.len() {
        by_class[ds.label(i)].push(i);
    }
    let mut out = vec![Vec::new(); k];
    let mut leftover: Vec<usize> = Vec::new();
    for (class, mut members) in by_class.into_iter().enumerate() {
        members.shuffle(&mut rng);
        let take = (members.len() as f64 * p).round() as usize;
        // The dominant owner of this class (classes beyond K wrap around).
        let owner = class % k;
        out[owner].extend(members.drain(..take.min(members.len())));
        leftover.extend(members);
    }
    leftover.shuffle(&mut rng);
    for (pos, idx) in leftover.into_iter().enumerate() {
        out[pos % k].push(idx);
    }
    out
}

/// Missing-classes partition (test-bed CIFAR-100, Sec. IV-D): each client
/// lacks `missing_frac` of the classes (chosen round-robin so every class is
/// still covered), and each class's samples are dealt uniformly to the
/// clients that do hold it.
pub fn partition_missing_classes(
    ds: &Dataset,
    k: usize,
    missing_frac: f64,
    seed: u64,
) -> Vec<Vec<usize>> {
    assert!(k > 1, "need at least two clients so classes can be missing somewhere");
    assert!((0.0..1.0).contains(&missing_frac), "missing fraction must be in [0, 1)");
    let l = ds.num_classes();
    let missing_per_client = (l as f64 * missing_frac).round() as usize;
    let mut rng = StdRng::seed_from_u64(seed);
    // holds[class] = set of clients holding it.
    let mut holds: Vec<Vec<usize>> = vec![(0..k).collect(); l];
    // Remove classes round-robin so coverage stays balanced.
    let mut cursor = 0usize;
    for client in 0..k {
        for _ in 0..missing_per_client {
            // Find the next class this client still holds and that at least
            // one other client also holds.
            for _ in 0..l {
                let class = cursor % l;
                cursor += 1;
                if holds[class].len() > 1 {
                    if let Some(pos) = holds[class].iter().position(|&c| c == client) {
                        holds[class].remove(pos);
                        break;
                    }
                }
            }
        }
    }
    let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); l];
    for i in 0..ds.len() {
        by_class[ds.label(i)].push(i);
    }
    let mut out = vec![Vec::new(); k];
    for (class, mut members) in by_class.into_iter().enumerate() {
        members.shuffle(&mut rng);
        let owners = &holds[class];
        for (pos, idx) in members.into_iter().enumerate() {
            out[owners[pos % owners.len()]].push(idx);
        }
    }
    out
}

/// LAN-shared partition (Fig. 3's setting: "the data distributions of the
/// clients within a LAN are the same"): the label space is split evenly
/// across LANs, and each LAN's samples are dealt IID to its member clients.
/// `lan_sizes[g]` is the number of clients in LAN `g`.
pub fn partition_lan_shards(ds: &Dataset, lan_sizes: &[usize], seed: u64) -> Vec<Vec<usize>> {
    assert!(!lan_sizes.is_empty() && lan_sizes.iter().all(|&s| s > 0));
    let g = lan_sizes.len();
    let l = ds.num_classes();
    assert!(l >= g, "need at least one class per LAN");
    let mut rng = StdRng::seed_from_u64(seed);
    // Classes round-robin over LANs.
    let mut lan_pool: Vec<Vec<usize>> = vec![Vec::new(); g];
    for i in 0..ds.len() {
        lan_pool[ds.label(i) % g].push(i);
    }
    let k: usize = lan_sizes.iter().sum();
    let mut out = vec![Vec::new(); k];
    let mut first_client = 0usize;
    for (lan, mut pool) in lan_pool.into_iter().enumerate() {
        pool.shuffle(&mut rng);
        let members = lan_sizes[lan];
        for (pos, idx) in pool.into_iter().enumerate() {
            out[first_client + pos % members].push(idx);
        }
        first_client += members;
    }
    out
}

/// Dirichlet partition: the de-facto standard non-IID knob in FL research.
/// For each class, sample client shares from `Dir(alpha)` and deal the
/// class's samples accordingly. Small `alpha` concentrates each class on a
/// few clients (highly non-IID); large `alpha` approaches IID.
///
/// Clients left empty (possible at very small `alpha`) each steal one
/// sample from the largest client so every client can train.
pub fn partition_dirichlet(ds: &Dataset, k: usize, alpha: f64, seed: u64) -> Vec<Vec<usize>> {
    assert!(k > 0 && alpha > 0.0, "need clients and a positive concentration");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); ds.num_classes()];
    for i in 0..ds.len() {
        by_class[ds.label(i)].push(i);
    }
    let mut out = vec![Vec::new(); k];
    for mut members in by_class.into_iter().filter(|m| !m.is_empty()) {
        members.shuffle(&mut rng);
        let shares = dirichlet(alpha, k, &mut rng);
        // Convert shares to cumulative boundaries over the class samples.
        let n = members.len();
        let mut start = 0usize;
        let mut cum = 0.0f64;
        for (client, &share) in shares.iter().enumerate() {
            cum += share;
            let end = if client == k - 1 { n } else { (cum * n as f64).round() as usize };
            let end = end.clamp(start, n);
            out[client].extend_from_slice(&members[start..end]);
            start = end;
        }
    }
    // Repair empty clients so downstream training never divides by zero.
    for i in 0..k {
        if out[i].is_empty() {
            let donor = (0..k).max_by_key(|&j| out[j].len()).expect("k > 0");
            assert!(donor != i && out[donor].len() > 1, "not enough data for {k} clients");
            let idx = out[donor].pop().expect("donor non-empty");
            out[i].push(idx);
        }
    }
    out
}

/// Samples a `Dir(alpha, ..., alpha)` vector via normalized Gamma draws
/// (Marsaglia–Tsang for alpha >= 1, boosted for alpha < 1).
fn dirichlet(alpha: f64, k: usize, rng: &mut StdRng) -> Vec<f64> {
    let mut draws: Vec<f64> = (0..k).map(|_| gamma_sample(alpha, rng)).collect();
    let total: f64 = draws.iter().sum();
    if total <= 0.0 {
        return vec![1.0 / k as f64; k];
    }
    for d in draws.iter_mut() {
        *d /= total;
    }
    draws
}

fn gamma_sample(shape: f64, rng: &mut StdRng) -> f64 {
    if shape < 1.0 {
        // Boost: Gamma(a) = Gamma(a + 1) * U^(1/a).
        let u: f64 = rng.random::<f64>().max(1e-300);
        return gamma_sample(shape + 1.0, rng) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = normal_sample(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.random();
        if u < 1.0 - 0.0331 * x.powi(4) || u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
            return d * v;
        }
    }
}

fn normal_sample(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-300);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

fn deal(indices: &[usize], k: usize) -> Vec<Vec<usize>> {
    let mut out = vec![Vec::with_capacity(indices.len() / k + 1); k];
    for (pos, &idx) in indices.iter().enumerate() {
        out[pos % k].push(idx);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::label_distribution;
    use crate::{SyntheticConfig, SyntheticDataset};

    fn dataset() -> Dataset {
        SyntheticDataset::generate(&SyntheticConfig::c10_like(50, 3)).train
    }

    fn covers_all(parts: &[Vec<usize>], n: usize) {
        let mut seen = vec![false; n];
        for part in parts {
            for &i in part {
                assert!(!seen[i], "index {i} assigned twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "not all samples assigned");
    }

    #[test]
    fn iid_is_balanced_and_covering() {
        let ds = dataset();
        // A random deal of 50 samples over 10 classes occasionally leaves a
        // class empty for some client; this seed is one where it does not
        // (the acceptable-fluctuation note below covers the rest).
        let parts = partition_iid(&ds, 10, 13);
        covers_all(&parts, ds.len());
        assert!(parts.iter().all(|p| p.len() == ds.len() / 10));
        // Each client's distribution is close to uniform: every class is
        // present and the *mean* deviation from uniform stays small (single
        // cells can fluctuate with 50 samples per client).
        for part in &parts {
            let q = label_distribution(&ds, part);
            assert!(q.iter().all(|&p| p > 0.0), "IID client missing a class entirely");
            let mean_dev: f64 = q.iter().map(|&p| (p - 0.1).abs()).sum::<f64>() / 10.0;
            assert!(mean_dev < 0.06, "IID marginal too skewed on average: {mean_dev}");
        }
    }

    #[test]
    fn one_class_per_client_shards() {
        let ds = dataset();
        let parts = partition_shards(&ds, 10, 1, 7);
        covers_all(&parts, ds.len());
        for part in &parts {
            let classes: std::collections::HashSet<usize> =
                part.iter().map(|&i| ds.label(i)).collect();
            assert_eq!(classes.len(), 1, "client should hold exactly one class");
        }
    }

    #[test]
    fn multi_shard_clients_hold_few_classes() {
        let cfg = SyntheticConfig::c100_like(4, 5);
        let ds = SyntheticDataset::generate(&cfg).train;
        let parts = partition_shards(&ds, 20, 5, 1);
        covers_all(&parts, ds.len());
        for part in &parts {
            let classes: std::collections::HashSet<usize> =
                part.iter().map(|&i| ds.label(i)).collect();
            assert!(classes.len() <= 5, "client holds {} classes", classes.len());
        }
    }

    #[test]
    fn dominant_partition_concentrates_one_class() {
        let ds = dataset();
        let parts = partition_dominant(&ds, 10, 0.8, 7);
        covers_all(&parts, ds.len());
        // Client 0's dominant class should be class 0 with ~80% of its mass
        // on that client's plate plus a share of the leftovers.
        let q0 = label_distribution(&ds, &parts[0]);
        let max_idx = q0.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).unwrap().0;
        assert_eq!(max_idx, 0);
        assert!(q0[0] > 0.4, "dominant class weight too small: {}", q0[0]);
    }

    #[test]
    fn dominant_at_one_over_k_is_roughly_iid() {
        let ds = dataset();
        let parts = partition_dominant(&ds, 10, 0.1, 7);
        for part in &parts {
            let q = label_distribution(&ds, part);
            for &prob in &q {
                assert!((prob - 0.1).abs() < 0.2);
            }
        }
    }

    #[test]
    fn missing_classes_are_absent() {
        let ds = dataset();
        let parts = partition_missing_classes(&ds, 10, 0.3, 7);
        covers_all(&parts, ds.len());
        for part in &parts {
            let classes: std::collections::HashSet<usize> =
                part.iter().map(|&i| ds.label(i)).collect();
            assert_eq!(classes.len(), 7, "client should lack 3 of 10 classes");
        }
    }

    #[test]
    fn missing_zero_keeps_all_classes() {
        let ds = dataset();
        let parts = partition_missing_classes(&ds, 5, 0.0, 7);
        for part in &parts {
            let classes: std::collections::HashSet<usize> =
                part.iter().map(|&i| ds.label(i)).collect();
            assert_eq!(classes.len(), 10);
        }
    }

    #[test]
    fn lan_shards_share_distribution_within_lan() {
        let ds = dataset();
        let lan_sizes = [4usize, 3, 3];
        let parts = partition_lan_shards(&ds, &lan_sizes, 7);
        covers_all(&parts, ds.len());
        // Clients 0-3 (LAN 0) hold classes {0, 3, 6, 9}; clients of other
        // LANs hold disjoint class sets.
        let classes = |part: &Vec<usize>| -> std::collections::BTreeSet<usize> {
            part.iter().map(|&i| ds.label(i)).collect()
        };
        let lan0 = classes(&parts[0]);
        for c in 1..4 {
            assert_eq!(classes(&parts[c]), lan0, "LAN members must share classes");
        }
        let lan1 = classes(&parts[4]);
        assert!(lan0.is_disjoint(&lan1), "LANs must hold different classes");
    }

    #[test]
    fn dirichlet_low_alpha_is_skewed_high_alpha_is_uniform() {
        let ds = dataset();
        let pop = crate::distribution::population_distribution(&ds);
        let skew = |alpha: f64| -> f64 {
            let parts = partition_dirichlet(&ds, 10, alpha, 7);
            let dists: Vec<Vec<f64>> = parts.iter().map(|p| label_distribution(&ds, p)).collect();
            crate::distribution::mean_divergence(&dists, &pop)
        };
        let low = skew(0.1);
        let high = skew(100.0);
        assert!(low > 3.0 * high, "alpha=0.1 divergence {low} vs alpha=100 {high}");
    }

    #[test]
    fn dirichlet_covers_everything_and_leaves_no_empty_client() {
        let ds = dataset();
        for alpha in [0.05, 0.5, 5.0] {
            let parts = partition_dirichlet(&ds, 10, alpha, 11);
            covers_all(&parts, ds.len());
            assert!(parts.iter().all(|p| !p.is_empty()), "alpha {alpha} left a client empty");
        }
    }

    #[test]
    fn partitions_are_deterministic_in_seed() {
        let ds = dataset();
        assert_eq!(partition_iid(&ds, 4, 9), partition_iid(&ds, 4, 9));
        assert_eq!(partition_dirichlet(&ds, 6, 0.3, 9), partition_dirichlet(&ds, 6, 0.3, 9));
        assert_eq!(partition_shards(&ds, 10, 1, 9), partition_shards(&ds, 10, 1, 9));
        assert_ne!(partition_iid(&ds, 4, 9), partition_iid(&ds, 4, 10));
    }
}
