//! A *virtual* synthetic dataset addressed by global sample index.
//!
//! [`SyntheticDataset::generate`](crate::SyntheticDataset) materializes the
//! whole training split up front — fine for tens of clients, fatal for a
//! 10k–1M client fleet. [`SyntheticWorld`] keeps only the class prototypes
//! (a few KB) and derives any sample `g ∈ [0, 2^63)` on demand as
//! `prototype(label(g)) + noise(seed, g)`: the same class-cluster data the
//! eager generator produces, but addressable in O(1) memory. Dormant fleet
//! clients store only their sample *range*; activation materializes exactly
//! that range into a concrete [`Dataset`] and drops it again on retirement.
//!
//! Labels follow a **blocked shard layout**: the global index space is
//! carved into runs of `shard` consecutive samples per class
//! (`label(g) = (g / shard) mod L`), so a contiguous interval of the sample
//! space — what the fleet's interval-tree assignment hands each client —
//! covers one or a few dominant classes. `shard = 1` degenerates to the
//! round-robin (IID) layout of the eager generator.

use fedmigr_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::synthetic::make_prototypes;
use crate::{Dataset, SyntheticConfig};

/// Splitmix-style finalizer decorrelating (seed, sample-index) pairs.
fn mix(seed: u64, g: u64) -> u64 {
    let mut z = seed ^ g.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// An infinite, deterministically addressable synthetic sample space.
#[derive(Clone, Debug)]
pub struct SyntheticWorld {
    cfg: SyntheticConfig,
    shard: u64,
    prototypes: Vec<Tensor>,
}

impl SyntheticWorld {
    /// Builds the world for `cfg` with label runs of `shard` consecutive
    /// samples per class. The prototypes are derived exactly as in
    /// [`crate::SyntheticDataset::generate`], so two worlds with the same
    /// config are identical; `train_per_class`/`test_per_class` are ignored
    /// (the world has no fixed size).
    ///
    /// # Panics
    /// Panics on a degenerate config (no classes/pixels or `shard == 0`).
    pub fn new(cfg: &SyntheticConfig, shard: u64) -> Self {
        assert!(cfg.num_classes > 0 && cfg.hw > 0 && cfg.channels > 0);
        assert!(shard > 0, "shard must be positive");
        let mut proto_rng = StdRng::seed_from_u64(cfg.seed);
        let prototypes = make_prototypes(cfg, &mut proto_rng);
        Self { cfg: cfg.clone(), shard, prototypes }
    }

    /// Number of classes `L`.
    pub fn num_classes(&self) -> usize {
        self.cfg.num_classes
    }

    /// Per-sample shape `[channels, hw, hw]`.
    pub fn sample_shape(&self) -> Vec<usize> {
        vec![self.cfg.channels, self.cfg.hw, self.cfg.hw]
    }

    /// Label of global sample `g` under the blocked shard layout.
    pub fn label_of(&self, g: u64) -> usize {
        ((g / self.shard) % self.cfg.num_classes as u64) as usize
    }

    /// Per-class sample counts of the half-open interval `[start, start +
    /// len)`, in closed form (no per-sample loop — stub construction runs
    /// this for every client of a possibly million-client fleet).
    pub fn class_counts_in(&self, start: u64, len: u64) -> Vec<u64> {
        let classes = self.cfg.num_classes as u64;
        let cycle = self.shard * classes;
        let mut counts = vec![0u64; self.cfg.num_classes];
        let full_cycles = len / cycle;
        for c in counts.iter_mut() {
            *c = full_cycles * self.shard;
        }
        // Walk the at-most-one partial cycle block by block.
        let mut g = start + full_cycles * cycle;
        let end = start + len;
        while g < end {
            let block_end = (g / self.shard + 1) * self.shard;
            let take = block_end.min(end) - g;
            counts[self.label_of(g)] += take;
            g += take;
        }
        counts
    }

    /// Materializes the half-open interval `[start, start + len)` as a
    /// concrete [`Dataset`] (local indices `0..len` map to global indices
    /// `start..start + len`). Each sample is a pure function of
    /// `(config, g)` — the same interval always materializes to the same
    /// bytes, regardless of what was materialized before.
    pub fn materialize(&self, start: u64, len: u64) -> Dataset {
        let per = self.cfg.channels * self.cfg.hw * self.cfg.hw;
        let mut data = Vec::with_capacity(len as usize * per);
        let mut labels = Vec::with_capacity(len as usize);
        for g in start..start + len {
            let label = self.label_of(g);
            let mut rng = StdRng::seed_from_u64(mix(self.cfg.seed, g));
            let noise = Tensor::randn(self.prototypes[label].shape(), self.cfg.noise_std, &mut rng);
            data.extend_from_slice(self.prototypes[label].add(&noise).data());
            labels.push(label);
        }
        Dataset::new(data, self.sample_shape(), labels, self.cfg.num_classes)
    }

    /// A class-balanced held-out evaluation split of `per_class` samples
    /// per class, drawn from a reserved region of the index space far above
    /// any fleet's training range (offset `2^63`), so test samples never
    /// collide with assigned training samples.
    pub fn test_split(&self, per_class: usize) -> Dataset {
        let per = self.cfg.channels * self.cfg.hw * self.cfg.hw;
        let classes = self.cfg.num_classes;
        let base = 1u64 << 63;
        let mut data = Vec::with_capacity(per_class * classes * per);
        let mut labels = Vec::with_capacity(per_class * classes);
        for rep in 0..per_class as u64 {
            for label in 0..classes {
                let g = base + rep * classes as u64 + label as u64;
                let mut rng = StdRng::seed_from_u64(mix(self.cfg.seed, g));
                let noise =
                    Tensor::randn(self.prototypes[label].shape(), self.cfg.noise_std, &mut rng);
                data.extend_from_slice(self.prototypes[label].add(&noise).data());
                labels.push(label);
            }
        }
        Dataset::new(data, self.sample_shape(), labels, classes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world(shard: u64) -> SyntheticWorld {
        SyntheticWorld::new(&SyntheticConfig::c10_like(4, 11), shard)
    }

    #[test]
    fn materialization_is_deterministic_and_interval_independent() {
        let w = world(8);
        let a = w.materialize(100, 16);
        let b = w.materialize(100, 16);
        assert_eq!(a.full_batch().0, b.full_batch().0);
        // The same global sample materializes identically inside any
        // enclosing interval.
        let wide = w.materialize(96, 24);
        let (xa, la) = a.batch(&[0]);
        let (xw, lw) = wide.batch(&[4]);
        assert_eq!(xa, xw);
        assert_eq!(la, lw);
    }

    #[test]
    fn blocked_labels_follow_shard_layout() {
        let w = world(5);
        assert_eq!(w.label_of(0), 0);
        assert_eq!(w.label_of(4), 0);
        assert_eq!(w.label_of(5), 1);
        assert_eq!(w.label_of(5 * 10), 0, "layout wraps after one full cycle");
        let ds = w.materialize(0, 12);
        assert_eq!(ds.labels(), &[0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 2, 2]);
    }

    #[test]
    fn class_counts_closed_form_matches_a_sample_loop() {
        let w = world(7);
        for (start, len) in [(0u64, 5u64), (3, 70), (69, 141), (1000, 1)] {
            let closed = w.class_counts_in(start, len);
            let mut looped = vec![0u64; w.num_classes()];
            for g in start..start + len {
                looped[w.label_of(g)] += 1;
            }
            assert_eq!(closed, looped, "interval [{start}, {})", start + len);
            assert_eq!(closed.iter().sum::<u64>(), len);
        }
    }

    #[test]
    fn test_split_is_balanced_and_disjoint_from_training_range() {
        let w = world(4);
        let test = w.test_split(6);
        assert_eq!(test.len(), 60);
        assert!(test.class_counts().iter().all(|&c| c == 6));
        // Reserved region: regenerating training data does not reproduce
        // any test sample.
        let train = w.materialize(0, 40);
        let (tx, _) = test.batch(&[0]);
        let (trx, _) = train.batch(&[0]);
        assert_ne!(tx, trx);
    }
}
