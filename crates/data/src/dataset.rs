use fedmigr_tensor::Tensor;

/// An in-memory labelled dataset of fixed-shape samples.
///
/// Samples are stored contiguously (row-major, `[N, ...sample_shape]`) so a
/// mini-batch is a gather into a fresh [`Tensor`].
#[derive(Clone, Debug)]
pub struct Dataset {
    data: Vec<f32>,
    sample_shape: Vec<usize>,
    labels: Vec<usize>,
    num_classes: usize,
}

impl Dataset {
    /// Creates a dataset.
    ///
    /// # Panics
    /// Panics if the data length is not `labels.len() * prod(sample_shape)`
    /// or any label is out of range.
    pub fn new(
        data: Vec<f32>,
        sample_shape: Vec<usize>,
        labels: Vec<usize>,
        num_classes: usize,
    ) -> Self {
        let per: usize = sample_shape.iter().product();
        assert_eq!(data.len(), labels.len() * per, "data/label size mismatch");
        assert!(
            labels.iter().all(|&l| l < num_classes),
            "label out of range for {num_classes} classes"
        );
        Self { data, sample_shape, labels, num_classes }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Per-sample shape (no batch dimension).
    pub fn sample_shape(&self) -> &[usize] {
        &self.sample_shape
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// All labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Label of sample `i`.
    pub fn label(&self, i: usize) -> usize {
        self.labels[i]
    }

    /// Gathers the samples at `indices` into a batch tensor and label list.
    pub fn batch(&self, indices: &[usize]) -> (Tensor, Vec<usize>) {
        let per: usize = self.sample_shape.iter().product();
        let mut out = Vec::with_capacity(indices.len() * per);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            out.extend_from_slice(&self.data[i * per..(i + 1) * per]);
            labels.push(self.labels[i]);
        }
        let mut shape = vec![indices.len()];
        shape.extend_from_slice(&self.sample_shape);
        (Tensor::from_vec(shape, out), labels)
    }

    /// Gathers the whole dataset as one batch.
    pub fn full_batch(&self) -> (Tensor, Vec<usize>) {
        let indices: Vec<usize> = (0..self.len()).collect();
        self.batch(&indices)
    }

    /// Per-class sample counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_classes];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        // 4 samples of shape [2], labels 0,1,0,1.
        Dataset::new(vec![0.0, 0.1, 1.0, 1.1, 2.0, 2.1, 3.0, 3.1], vec![2], vec![0, 1, 0, 1], 2)
    }

    #[test]
    fn batch_gathers_rows_and_labels() {
        let ds = tiny();
        let (x, y) = ds.batch(&[2, 0]);
        assert_eq!(x.shape(), &[2, 2]);
        assert_eq!(x.data(), &[2.0, 2.1, 0.0, 0.1]);
        assert_eq!(y, vec![0, 0]);
    }

    #[test]
    fn class_counts_tally_labels() {
        assert_eq!(tiny().class_counts(), vec![2, 2]);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn new_validates_lengths() {
        let _ = Dataset::new(vec![0.0; 5], vec![2], vec![0, 1], 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_validates_labels() {
        let _ = Dataset::new(vec![0.0; 4], vec![2], vec![0, 5], 2);
    }
}
