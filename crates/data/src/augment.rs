//! Lightweight image augmentation for `[C, H, W]` samples: seeded random
//! horizontal flips and integer shifts (zero-padded), the standard
//! CIFAR-style recipe at simulator scale.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Augmentation configuration.
#[derive(Clone, Copy, Debug)]
pub struct AugmentConfig {
    /// Probability of a horizontal flip.
    pub flip_prob: f64,
    /// Maximum absolute shift in pixels along each axis.
    pub max_shift: usize,
}

impl Default for AugmentConfig {
    fn default() -> Self {
        Self { flip_prob: 0.5, max_shift: 1 }
    }
}

/// A seeded augmenter, applied sample-by-sample.
#[derive(Clone, Debug)]
pub struct Augmenter {
    config: AugmentConfig,
    rng: StdRng,
}

impl Augmenter {
    /// Creates an augmenter.
    pub fn new(config: AugmentConfig, seed: u64) -> Self {
        Self { config, rng: StdRng::seed_from_u64(seed) }
    }

    /// Augments one `[C, H, W]` sample in place.
    pub fn apply(&mut self, sample: &mut [f32], channels: usize, hw: usize) {
        assert_eq!(sample.len(), channels * hw * hw, "sample size mismatch");
        if self.rng.random::<f64>() < self.config.flip_prob {
            flip_horizontal(sample, channels, hw);
        }
        if self.config.max_shift > 0 {
            let range = self.config.max_shift as i32;
            let dy = self.rng.random_range(-range..=range);
            let dx = self.rng.random_range(-range..=range);
            shift(sample, channels, hw, dy, dx);
        }
    }
}

/// Mirrors each row of every channel.
pub fn flip_horizontal(sample: &mut [f32], channels: usize, hw: usize) {
    for c in 0..channels {
        let plane = c * hw * hw;
        for y in 0..hw {
            let row = plane + y * hw;
            sample[row..row + hw].reverse();
        }
    }
}

/// Shifts the image by `(dy, dx)` pixels, filling vacated pixels with zero.
pub fn shift(sample: &mut [f32], channels: usize, hw: usize, dy: i32, dx: i32) {
    if dy == 0 && dx == 0 {
        return;
    }
    let src = sample.to_vec();
    sample.fill(0.0);
    for c in 0..channels {
        let plane = c * hw * hw;
        for y in 0..hw {
            let sy = y as i32 - dy;
            if sy < 0 || sy >= hw as i32 {
                continue;
            }
            for x in 0..hw {
                let sx = x as i32 - dx;
                if sx < 0 || sx >= hw as i32 {
                    continue;
                }
                sample[plane + y * hw + x] = src[plane + sy as usize * hw + sx as usize];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flip_is_an_involution() {
        let mut s: Vec<f32> = (0..2 * 4 * 4).map(|x| x as f32).collect();
        let orig = s.clone();
        flip_horizontal(&mut s, 2, 4);
        assert_ne!(s, orig);
        flip_horizontal(&mut s, 2, 4);
        assert_eq!(s, orig);
    }

    #[test]
    fn flip_mirrors_rows() {
        let mut s = vec![1.0, 2.0, 3.0, 4.0];
        flip_horizontal(&mut s, 1, 2);
        assert_eq!(s, vec![2.0, 1.0, 4.0, 3.0]);
    }

    #[test]
    fn shift_moves_content_and_zero_pads() {
        let mut s = vec![
            1.0, 2.0, //
            3.0, 4.0,
        ];
        shift(&mut s, 1, 2, 1, 0); // Down by one row.
        assert_eq!(s, vec![0.0, 0.0, 1.0, 2.0]);
    }

    #[test]
    fn zero_shift_is_identity() {
        let mut s = vec![1.0, 2.0, 3.0, 4.0];
        let orig = s.clone();
        shift(&mut s, 1, 2, 0, 0);
        assert_eq!(s, orig);
    }

    #[test]
    fn augmenter_is_deterministic_per_seed() {
        let cfg = AugmentConfig::default();
        let base: Vec<f32> = (0..3 * 8 * 8).map(|x| (x as f32).sin()).collect();
        let mut a = Augmenter::new(cfg, 5);
        let mut b = Augmenter::new(cfg, 5);
        for _ in 0..10 {
            let mut sa = base.clone();
            let mut sb = base.clone();
            a.apply(&mut sa, 3, 8);
            b.apply(&mut sb, 3, 8);
            assert_eq!(sa, sb);
        }
    }

    #[test]
    fn augmenter_preserves_energy_roughly() {
        // A flip never changes values; a 1-pixel shift zeroes at most one
        // border row/column per axis.
        let cfg = AugmentConfig { flip_prob: 1.0, max_shift: 1 };
        let mut aug = Augmenter::new(cfg, 9);
        let base = vec![1.0f32; 64];
        let mut s = base.clone();
        aug.apply(&mut s, 1, 8);
        let kept: f32 = s.iter().sum();
        assert!(kept >= 48.0, "too much content lost: {kept}");
    }
}
