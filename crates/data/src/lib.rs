//! Synthetic image-classification datasets and the non-IID partitioners the
//! FedMigr paper evaluates with.
//!
//! The paper uses CIFAR-10, CIFAR-100 and ImageNet-100. Those datasets are
//! not available here, so this crate generates **seeded synthetic
//! class-cluster image data** with matching class counts: each class has a
//! smooth random prototype image and samples are noisy copies of it. This
//! preserves the phenomenon the paper studies — local SGD on a skewed label
//! marginal diverges from the population optimum — while keeping every run
//! deterministic and CPU-fast.
//!
//! The partitioners reproduce every data layout in the paper:
//!
//! * IID ([`partition_iid`]),
//! * label shards — one or `c` classes per client ([`partition_shards`],
//!   simulation Sec. IV-C),
//! * `p%`-dominant class ([`partition_dominant`], test-bed CIFAR-10
//!   Sec. IV-D),
//! * missing-classes ([`partition_missing_classes`], test-bed CIFAR-100).
//!
//! [`distribution`] implements the label-distribution analysis of
//! Sec. II-C: per-client label marginals, L1/EMD distances to the
//! population distribution, the pairwise difference matrix `D_t` the DRL
//! state uses, and the *virtual distribution* of Eq. (13) whose contraction
//! (Eq. 15) is the paper's convergence argument.

pub mod augment;
mod dataset;
pub mod distribution;
mod partition;
pub mod poison;
mod synthetic;
mod world;

pub use dataset::Dataset;
pub use partition::{
    partition_dirichlet, partition_dominant, partition_iid, partition_lan_shards,
    partition_missing_classes, partition_shards,
};
pub use poison::{apply_label_map, flip_label, flip_label_map};
pub use synthetic::{SyntheticConfig, SyntheticDataset};
pub use world::SyntheticWorld;
