//! Label-flip data poisoning for Byzantine clients.
//!
//! [`Dataset`](crate::Dataset)s are shared between clients through `Arc`,
//! so a Byzantine client cannot mutate labels in place. Instead the attack
//! is expressed as a per-client *label map* applied at batch-assembly time:
//! an honest client uses the identity map, a label-flipping client uses the
//! involution `c -> C - 1 - c` (the standard flip from the label-flipping
//! attack literature — every class moves, and applying it twice restores
//! the original, which keeps tests simple).

/// The flipped label for class `label` out of `num_classes`.
pub fn flip_label(label: usize, num_classes: usize) -> usize {
    assert!(label < num_classes, "label {label} out of range for {num_classes} classes");
    num_classes - 1 - label
}

/// The full label map for a flipping client: `map[c] == C - 1 - c`.
pub fn flip_label_map(num_classes: usize) -> Vec<usize> {
    (0..num_classes).map(|c| flip_label(c, num_classes)).collect()
}

/// Applies a label map to a batch of labels, out of place.
///
/// # Panics
/// Panics if a label falls outside the map.
pub fn apply_label_map(labels: &[usize], map: &[usize]) -> Vec<usize> {
    labels.iter().map(|&l| map[l]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flip_is_an_involution_that_moves_every_class() {
        for c in [2usize, 10, 100] {
            let map = flip_label_map(c);
            for l in 0..c {
                assert_eq!(map[map[l]], l, "flip twice must restore");
                if c > 1 {
                    assert_ne!(map[l], l, "every class must move (C={c}, l={l})");
                }
            }
        }
    }

    #[test]
    fn applies_to_batches() {
        let map = flip_label_map(10);
        assert_eq!(apply_label_map(&[0, 9, 4, 5], &map), vec![9, 0, 5, 4]);
        assert_eq!(apply_label_map(&[], &map), Vec::<usize>::new());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_label() {
        let _ = flip_label(10, 10);
    }
}
