use fedmigr_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::Dataset;

/// Configuration for a synthetic class-cluster image dataset.
///
/// Each class gets a smooth random *prototype* image (low-frequency noise);
/// samples are the prototype plus i.i.d. Gaussian pixel noise. `noise_std`
/// controls task difficulty: higher noise means more class overlap.
#[derive(Clone, Debug)]
pub struct SyntheticConfig {
    /// Number of classes `L`.
    pub num_classes: usize,
    /// Training samples generated per class.
    pub train_per_class: usize,
    /// Test samples generated per class.
    pub test_per_class: usize,
    /// Image channels.
    pub channels: usize,
    /// Image side length (square images).
    pub hw: usize,
    /// Standard deviation of per-pixel sample noise.
    pub noise_std: f32,
    /// Scale of the class prototypes relative to unit-variance patterns:
    /// smaller separation (or larger `noise_std`) makes the task harder.
    pub class_sep: f32,
    /// Size of the shared bank of smooth "part" atoms prototypes are built
    /// from (0 = independent prototypes). Sharing parts across classes is
    /// what real image classes do: it makes features transferable, so a
    /// model trained on one class still learns something useful for the
    /// others — the property model migration exploits.
    pub atom_bank: usize,
    /// Number of atoms combined into each class prototype.
    pub atoms_per_class: usize,
    /// Fraction of each prototype's energy coming from a class-private
    /// smooth pattern (the rest comes from the shared atoms). Private
    /// structure is what a model *forgets* when it trains elsewhere, so
    /// higher values make migration coverage matter more.
    pub private_frac: f32,
    /// Master seed; every derived stream is deterministic in it.
    pub seed: u64,
}

impl SyntheticConfig {
    /// CIFAR-10 stand-in: 10 classes, 3x8x8 images.
    pub fn c10_like(train_per_class: usize, seed: u64) -> Self {
        Self {
            num_classes: 10,
            train_per_class,
            test_per_class: (train_per_class / 5).max(8),
            channels: 3,
            hw: 8,
            noise_std: 3.0,
            class_sep: 1.0,
            atom_bank: 12,
            atoms_per_class: 3,
            private_frac: 0.5,
            seed,
        }
    }

    /// CIFAR-100 stand-in: 100 classes, 3x8x8 images.
    pub fn c100_like(train_per_class: usize, seed: u64) -> Self {
        Self { num_classes: 100, atom_bank: 24, ..Self::c10_like(train_per_class, seed) }
    }

    /// ImageNet-100 stand-in: 100 classes, 3x8x8 images (the paper itself
    /// downsizes ImageNet to a 100-class subset for edge devices).
    pub fn imagenet100_like(train_per_class: usize, seed: u64) -> Self {
        Self {
            num_classes: 100,
            noise_std: 3.3,
            atom_bank: 24,
            ..Self::c10_like(train_per_class, seed)
        }
    }
}

/// A generated train/test pair.
#[derive(Clone, Debug)]
pub struct SyntheticDataset {
    /// Training split.
    pub train: Dataset,
    /// Held-out test split (the server's evaluation set, as in the paper).
    pub test: Dataset,
}

impl SyntheticDataset {
    /// Generates the dataset described by `config`.
    pub fn generate(config: &SyntheticConfig) -> Self {
        assert!(config.num_classes > 0 && config.hw > 0 && config.channels > 0);
        let mut proto_rng = StdRng::seed_from_u64(config.seed);
        let per = config.channels * config.hw * config.hw;
        let prototypes = make_prototypes(config, &mut proto_rng);

        let make_split = |per_class: usize, salt: u64| {
            let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(salt));
            let n = per_class * config.num_classes;
            let mut data = Vec::with_capacity(n * per);
            let mut labels = Vec::with_capacity(n);
            for _ in 0..per_class {
                for (l, proto) in prototypes.iter().enumerate() {
                    let noise = Tensor::randn(proto.shape(), config.noise_std, &mut rng);
                    data.extend_from_slice(proto.add(&noise).data());
                    labels.push(l);
                }
            }
            Dataset::new(
                data,
                vec![config.channels, config.hw, config.hw],
                labels,
                config.num_classes,
            )
        };

        SyntheticDataset {
            train: make_split(config.train_per_class, 0x5eed_0001),
            test: make_split(config.test_per_class, 0x5eed_0002),
        }
    }
}

/// Builds the class prototypes: either independent smooth patterns
/// (`atom_bank == 0`) or normalized signed combinations of atoms drawn from
/// a shared bank, so classes share low-level structure the way natural
/// image classes share edges and textures.
pub(crate) fn make_prototypes(config: &SyntheticConfig, rng: &mut StdRng) -> Vec<Tensor> {
    use rand::Rng;
    let target_norm = ((config.channels * config.hw * config.hw) as f32).sqrt() * config.class_sep;
    if config.atom_bank == 0 {
        return (0..config.num_classes)
            .map(|_| smooth_prototype(config.channels, config.hw, rng).scale(config.class_sep))
            .collect();
    }
    let atoms: Vec<Tensor> =
        (0..config.atom_bank).map(|_| smooth_prototype(config.channels, config.hw, rng)).collect();
    let m = config.atoms_per_class.max(1).min(config.atom_bank);
    let shared_w = (1.0 - config.private_frac).max(0.0).sqrt();
    let private_w = config.private_frac.max(0.0).sqrt();
    (0..config.num_classes)
        .map(|_| {
            let mut proto = Tensor::zeros(atoms[0].shape());
            let mut picked = Vec::with_capacity(m);
            while picked.len() < m {
                let a = rng.random_range(0..config.atom_bank);
                if !picked.contains(&a) {
                    picked.push(a);
                }
            }
            for &a in &picked {
                let sign = if rng.random::<bool>() { 1.0 } else { -1.0 };
                let weight = sign * (0.5 + rng.random::<f32>());
                proto.axpy(weight, &atoms[a]);
            }
            let norm = proto.l2_norm().max(1e-6);
            let mut proto = proto.scale(shared_w / norm);
            let private = smooth_prototype(config.channels, config.hw, rng);
            let pnorm = private.l2_norm().max(1e-6);
            proto.axpy(private_w / pnorm, &private);
            let norm = proto.l2_norm().max(1e-6);
            proto.scale(target_norm / norm)
        })
        .collect()
}

/// A smooth random image: white noise passed through a 3x3 box blur twice,
/// then renormalized to roughly unit variance. Low-frequency structure makes
/// the classes learnable by small convolutions.
fn smooth_prototype(channels: usize, hw: usize, rng: &mut StdRng) -> Tensor {
    let raw = Tensor::randn(&[channels, hw, hw], 1.0, rng);
    let blurred = box_blur(&box_blur(&raw, channels, hw), channels, hw);
    let norm = blurred.l2_norm().max(1e-6);
    let scale = ((channels * hw * hw) as f32).sqrt() / norm;
    blurred.scale(scale)
}

fn box_blur(img: &Tensor, channels: usize, hw: usize) -> Tensor {
    let src = img.data();
    let mut out = vec![0.0f32; src.len()];
    for c in 0..channels {
        let plane = c * hw * hw;
        for y in 0..hw {
            for x in 0..hw {
                let mut sum = 0.0;
                let mut count = 0.0;
                for dy in -1i32..=1 {
                    for dx in -1i32..=1 {
                        let ny = y as i32 + dy;
                        let nx = x as i32 + dx;
                        if ny >= 0 && ny < hw as i32 && nx >= 0 && nx < hw as i32 {
                            sum += src[plane + ny as usize * hw + nx as usize];
                            count += 1.0;
                        }
                    }
                }
                out[plane + y * hw + x] = sum / count;
            }
        }
    }
    Tensor::from_vec(img.shape().to_vec(), out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = SyntheticConfig::c10_like(4, 99);
        let a = SyntheticDataset::generate(&cfg);
        let b = SyntheticDataset::generate(&cfg);
        assert_eq!(a.train.full_batch().0, b.train.full_batch().0);
        assert_eq!(a.test.labels(), b.test.labels());
    }

    #[test]
    fn splits_have_expected_sizes_and_balance() {
        let cfg = SyntheticConfig::c10_like(6, 1);
        let ds = SyntheticDataset::generate(&cfg);
        assert_eq!(ds.train.len(), 60);
        assert!(ds.train.class_counts().iter().all(|&c| c == 6));
        assert_eq!(ds.test.len(), 8 * 10);
    }

    #[test]
    fn different_seeds_differ() {
        let a = SyntheticDataset::generate(&SyntheticConfig::c10_like(2, 1));
        let b = SyntheticDataset::generate(&SyntheticConfig::c10_like(2, 2));
        assert_ne!(a.train.full_batch().0, b.train.full_batch().0);
    }

    #[test]
    fn classes_are_separable_by_nearest_prototype() {
        // Mean of a class's train samples should be closest to that class's
        // own test samples — i.e. the task is actually learnable.
        let cfg = SyntheticConfig {
            num_classes: 4,
            train_per_class: 16,
            test_per_class: 4,
            channels: 1,
            hw: 8,
            noise_std: 0.5,
            class_sep: 1.0,
            atom_bank: 0,
            atoms_per_class: 0,
            private_frac: 0.0,
            seed: 5,
        };
        let ds = SyntheticDataset::generate(&cfg);
        let per = 64usize;
        // Class means from train split.
        let (x, y) = ds.train.full_batch();
        let mut means = vec![vec![0.0f32; per]; 4];
        let mut counts = vec![0usize; 4];
        for (i, &l) in y.iter().enumerate() {
            for j in 0..per {
                means[l][j] += x.data()[i * per + j];
            }
            counts[l] += 1;
        }
        for (m, &c) in means.iter_mut().zip(&counts) {
            for v in m.iter_mut() {
                *v /= c as f32;
            }
        }
        // Nearest-mean classification on the test split.
        let (tx, ty) = ds.test.full_batch();
        let mut correct = 0usize;
        for (i, &l) in ty.iter().enumerate() {
            let sample = &tx.data()[i * per..(i + 1) * per];
            let mut best = 0;
            let mut best_d = f32::MAX;
            for (k, m) in means.iter().enumerate() {
                let d: f32 = sample.iter().zip(m).map(|(a, b)| (a - b) * (a - b)).sum();
                if d < best_d {
                    best_d = d;
                    best = k;
                }
            }
            if best == l {
                correct += 1;
            }
        }
        let acc = correct as f64 / ty.len() as f64;
        assert!(acc > 0.9, "nearest-mean accuracy too low: {acc}");
    }

    #[test]
    fn c100_like_has_hundred_classes() {
        let ds = SyntheticDataset::generate(&SyntheticConfig::c100_like(1, 0));
        assert_eq!(ds.train.num_classes(), 100);
        assert_eq!(ds.train.len(), 100);
    }
}
