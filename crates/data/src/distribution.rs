//! Label-distribution analysis from Sec. II-C of the paper.
//!
//! The paper's convergence argument tracks, per client `k`, the distance
//! between the local label marginal `q_k(y = l)` and the population marginal
//! `q(y = l)`. Model migration shrinks that distance: Eq. (13) gives the
//! *virtual* distribution a migrated model effectively trains on, and
//! Eq. (15) shows it is strictly closer to the population distribution.
//! This module implements those quantities plus the pairwise
//! distribution-difference matrix `D_t` used in the DRL state.

use crate::Dataset;

/// Label marginal `q_k` of the samples at `indices` (empty input yields the
/// all-zero vector).
pub fn label_distribution(ds: &Dataset, indices: &[usize]) -> Vec<f64> {
    let mut counts = vec![0.0f64; ds.num_classes()];
    for &i in indices {
        counts[ds.label(i)] += 1.0;
    }
    let total: f64 = counts.iter().sum();
    if total > 0.0 {
        for c in counts.iter_mut() {
            *c /= total;
        }
    }
    counts
}

/// Population label marginal `q` of the whole dataset.
pub fn population_distribution(ds: &Dataset) -> Vec<f64> {
    let counts = ds.class_counts();
    let total: f64 = counts.iter().map(|&c| c as f64).sum();
    counts.iter().map(|&c| c as f64 / total).collect()
}

/// Total-variation-style L1 distance `sum_l |a_l - b_l|` — the
/// distribution distance the paper's Eq. (11) sums over labels.
pub fn l1_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "distributions must share support");
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

/// One-dimensional earth mover's distance between two categorical
/// distributions with unit ground distance between adjacent labels
/// (cumulative-difference form).
pub fn emd_1d(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "distributions must share support");
    let mut cum = 0.0f64;
    let mut total = 0.0f64;
    for (x, y) in a.iter().zip(b) {
        cum += x - y;
        total += cum.abs();
    }
    total
}

/// Earth mover's distance normalized to `[0, 1]`: [`emd_1d`] divided by
/// its maximum possible value `n - 1` over `n` labels (all mass at one end
/// of the label axis versus all mass at the other). Degenerate supports of
/// one label admit no transport, so their distance is 0.
pub fn normalized_emd(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "distributions must share support");
    if a.len() <= 1 {
        return 0.0;
    }
    emd_1d(a, b) / (a.len() - 1) as f64
}

/// The `K x K` symmetric matrix `D_t` of pairwise L1 distances between
/// client label distributions — part of the DRL state (Sec. III-C).
pub fn pairwise_distance_matrix(dists: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let k = dists.len();
    let mut m = vec![vec![0.0f64; k]; k];
    for i in 0..k {
        for j in (i + 1)..k {
            let d = l1_distance(&dists[i], &dists[j]);
            m[i][j] = d;
            m[j][i] = d;
        }
    }
    m
}

/// The virtual distribution of Eq. (13): after `m` random migrations among
/// `k` clients, a model that started on a client with class counts
/// `local_counts` (sizes `n_k^l`) effectively trains on
/// `(K n_k^l + M n^l) / (K n_k + M N)` where `pop_counts` are the population
/// class counts `n^l`.
pub fn virtual_distribution(
    local_counts: &[usize],
    pop_counts: &[usize],
    m: usize,
    k: usize,
) -> Vec<f64> {
    assert_eq!(local_counts.len(), pop_counts.len());
    assert!(k > 0);
    let n_k: f64 = local_counts.iter().map(|&c| c as f64).sum();
    let n: f64 = pop_counts.iter().map(|&c| c as f64).sum();
    let denom = k as f64 * n_k + m as f64 * n;
    local_counts
        .iter()
        .zip(pop_counts)
        .map(|(&nl_k, &nl)| (k as f64 * nl_k as f64 + m as f64 * nl as f64) / denom)
        .collect()
}

/// Per-client report of the Eq. 13–15 contraction: for each client, the
/// L1 distance of its label distribution to the population before and
/// after `m` uniform migrations among `k` clients. The paper's convergence
/// argument is exactly that `after <= before` for every client.
pub fn contraction_report(ds: &Dataset, partitions: &[Vec<usize>], m: usize) -> Vec<(f64, f64)> {
    let k = partitions.len();
    let pop_counts = ds.class_counts();
    let n: f64 = pop_counts.iter().map(|&c| c as f64).sum();
    let q: Vec<f64> = pop_counts.iter().map(|&c| c as f64 / n).collect();
    partitions
        .iter()
        .map(|part| {
            let mut counts = vec![0usize; ds.num_classes()];
            for &i in part {
                counts[ds.label(i)] += 1;
            }
            let local_q = label_distribution(ds, part);
            let before = l1_distance(&local_q, &q);
            let after = l1_distance(&virtual_distribution(&counts, &pop_counts, m, k), &q);
            (before, after)
        })
        .collect()
}

/// Mean L1 distance of per-client distributions to the population — a
/// scalar "non-IID level" used when reporting experiments.
pub fn mean_divergence(client_dists: &[Vec<f64>], population: &[f64]) -> f64 {
    if client_dists.is_empty() {
        return 0.0;
    }
    client_dists.iter().map(|q| l1_distance(q, population)).sum::<f64>() / client_dists.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{partition_shards, SyntheticConfig, SyntheticDataset};

    #[test]
    fn l1_basics() {
        assert_eq!(l1_distance(&[0.5, 0.5], &[0.5, 0.5]), 0.0);
        assert_eq!(l1_distance(&[1.0, 0.0], &[0.0, 1.0]), 2.0);
    }

    #[test]
    fn emd_accounts_for_label_distance() {
        // Moving mass one bin costs less than moving it two bins.
        let near = emd_1d(&[1.0, 0.0, 0.0], &[0.0, 1.0, 0.0]);
        let far = emd_1d(&[1.0, 0.0, 0.0], &[0.0, 0.0, 1.0]);
        assert!(far > near);
        assert_eq!(emd_1d(&[0.3, 0.7], &[0.3, 0.7]), 0.0);
    }

    #[test]
    fn normalized_emd_hits_its_bounds() {
        // Antipodal point masses are the unit-distance case.
        assert_eq!(normalized_emd(&[1.0, 0.0, 0.0], &[0.0, 0.0, 1.0]), 1.0);
        assert_eq!(normalized_emd(&[0.2, 0.8], &[0.2, 0.8]), 0.0);
        // One-label supports admit no transport at all.
        assert_eq!(normalized_emd(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn pairwise_matrix_is_symmetric_with_zero_diagonal() {
        let dists = vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![0.5, 0.5]];
        let m = pairwise_distance_matrix(&dists);
        for i in 0..3 {
            assert_eq!(m[i][i], 0.0);
            for j in 0..3 {
                assert_eq!(m[i][j], m[j][i]);
            }
        }
        assert_eq!(m[0][1], 2.0);
        assert_eq!(m[0][2], 1.0);
    }

    #[test]
    fn virtual_distribution_contracts_towards_population() {
        // Eq. (15): for any M >= 1 the virtual distribution is strictly
        // closer to the population than the local one (non-IID case).
        let local = [100usize, 0, 0, 0];
        let pop = [100usize, 100, 100, 100];
        let q_local: Vec<f64> = vec![1.0, 0.0, 0.0, 0.0];
        let q_pop: Vec<f64> = vec![0.25; 4];
        let before = l1_distance(&q_local, &q_pop);
        let mut prev = before;
        for m in 1..=8 {
            let q_virtual = virtual_distribution(&local, &pop, m, 10);
            let d = l1_distance(&q_virtual, &q_pop);
            assert!(d < prev, "distance must shrink monotonically in M: {d} !< {prev}");
            prev = d;
        }
    }

    #[test]
    fn virtual_distribution_is_identity_for_zero_migrations() {
        let local = [3usize, 1];
        let pop = [30usize, 10];
        let q = virtual_distribution(&local, &pop, 0, 5);
        assert!((q[0] - 0.75).abs() < 1e-12);
        assert!((q[1] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn shard_partition_has_high_divergence_iid_low() {
        let ds = SyntheticDataset::generate(&SyntheticConfig::c10_like(50, 3)).train;
        let pop = population_distribution(&ds);
        let shard_parts = partition_shards(&ds, 10, 1, 1);
        let shard_dists: Vec<Vec<f64>> =
            shard_parts.iter().map(|p| label_distribution(&ds, p)).collect();
        let iid_parts = crate::partition_iid(&ds, 10, 1);
        let iid_dists: Vec<Vec<f64>> =
            iid_parts.iter().map(|p| label_distribution(&ds, p)).collect();
        assert!(mean_divergence(&shard_dists, &pop) > 3.0 * mean_divergence(&iid_dists, &pop));
    }

    #[test]
    fn contraction_report_shrinks_every_client() {
        let ds = SyntheticDataset::generate(&SyntheticConfig::c10_like(20, 3)).train;
        let parts = partition_shards(&ds, 10, 1, 1);
        let report = contraction_report(&ds, &parts, 5);
        assert_eq!(report.len(), 10);
        for (before, after) in report {
            assert!(after < before, "Eq. 15 violated: {after} !< {before}");
            assert!(before > 1.0, "one-class clients start far from the population");
        }
    }

    #[test]
    fn population_distribution_sums_to_one() {
        let ds = SyntheticDataset::generate(&SyntheticConfig::c10_like(5, 3)).train;
        let pop = population_distribution(&ds);
        assert!((pop.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }
}
