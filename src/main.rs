//! `fedmigr` — command-line front end for the FedMigr experiment runner.
//!
//! ```text
//! fedmigr --scheme fedmigr --partition shards --epochs 150 --csv run.csv
//! ```
//!
//! Builds a synthetic federation (dataset, partition, MEC topology,
//! devices), runs the selected scheme and prints a summary; `--csv` also
//! writes the per-epoch curve for external plotting. Run with `--help` for
//! the full flag list.

use fedmigr::core::{
    CodecConfig, DiagConfig, DpConfig, Experiment, FleetExperiment, FleetOptions, RunConfig,
    RunMetrics, Scheme,
};
use fedmigr::data::{
    partition_dirichlet, partition_dominant, partition_iid, partition_missing_classes,
    partition_shards, SyntheticConfig, SyntheticDataset,
};
use fedmigr::net::{
    AttackConfig, ClientCompute, FaultConfig, Topology, TopologyConfig, TransportConfig,
};
use fedmigr::nn::zoo::{self, NetScale};
use fedmigr_telemetry::{error, info, Filter};

/// Counting allocator behind `--profile-alloc`: forwards to the system
/// allocator and, only while alloc profiling is enabled, attributes
/// allocations to the innermost profiled scope.
#[global_allocator]
static ALLOC: fedmigr_telemetry::profiler::CountingAlloc =
    fedmigr_telemetry::profiler::CountingAlloc;

const HELP: &str = "\
fedmigr — federated learning with intelligent model migration

USAGE:
    fedmigr [OPTIONS]

OPTIONS:
    --scheme <s>         fedavg | fedprox | fedswap | randmigr | fedmigr | fedasync
                         (default fedmigr)
    --partition <p>      iid | shards | dominant:<frac> | missing:<frac> |
                         dirichlet:<alpha>   (default shards)
    --classes <n>        number of classes (default 10)
    --samples <n>        training samples per class (default 80)
    --lans <a,b,..>      clients per LAN (default 4,3,3)
    --epochs <n>         training epochs (default 150)
    --agg <n>            aggregation interval for migration schemes (default 10)
    --lr <f>             learning rate (default 0.01)
    --batch <n>          mini-batch size (default 32)
    --eval <n>           evaluation interval (default 10)
    --participation <f>  client fraction per epoch (default 1.0)
    --codec <c>          wire codec: identity | int8 | int4 | stoch8 |
                         topk:<frac> | topk-int8:<frac>, append ,noef to
                         disable error feedback (default identity)
    --dp-eps <f>         enable (eps, 1e-5)-LDP on transmitted models
    --target <f>         stop at this test accuracy
    --dropout <f>        inject edge churn at this dropout rate in [0, 1)
                         (crashes, stragglers, link/WAN outages; default off)
    --net-stress <f>     inject network stress at this level in [0, 1)
                         (flapping links, burst loss, bandwidth collapse);
                         composes with --dropout (default off)
    --transport <t>      lockstep | flow (default lockstep). flow simulates
                         every communication phase as concurrent transfers
                         contending for link capacity, with AIMD congestion
                         control, timeout/retransmission state machines,
                         per-round upload deadlines and staleness-tolerant
                         degraded aggregation
    --attack <spec>      Byzantine adversary: signflip:<frac> | gauss:<frac>:<std> |
                         scaled:<frac>:<mult> | nan:<frac> | labelflip:<frac>
                         (schedule seeded by --fault-seed; default off)
    --checkpoint-every <n>  snapshot the complete run state every n rounds
    --checkpoint-dir <d> write snapshots to <d> as ckpt_round_<r>.fmrs plus a
                         rolling latest.fmrs (atomic rename; implies
                         --checkpoint-every 1 unless set)
    --resume <path>      restore a snapshot and continue the run from the
                         round after it; the completed run is byte-identical
                         to one that was never interrupted
    --kill-at <n>        simulate a crash right after round n completes
                         (chaos testing; pair with --resume to recover)
    --watchdog           enable the divergence watchdog: when the global
                         model goes non-finite or the loss spikes beyond
                         --spike-factor times the trailing mean, roll back to
                         the last good snapshot and quarantine the implicated
                         sources
    --spike-factor <f>   watchdog loss-spike threshold as a multiple of the
                         trailing-window mean loss (default 4.0)
    --max-rollbacks <n>  watchdog rollback budget per run (default 3)
    --fault-seed <n>     seed of the fault schedule (default 13)
    --fleet              fleet mode: lazy sharded client state for large
                         populations — clients live as compact dormant stubs,
                         each aggregation block activates only a sampled
                         cohort, so peak memory scales with the cohort, not
                         the fleet. Supports fedavg/fedmigr, identity codec,
                         lockstep transport; --samples becomes the per-client
                         holding (10-class synthetic world)
    --fleet-clients <n>  fleet size K (default 10000; fleet mode only)
    --fleet-lans <n>     number of LANs in the fleet (default 10)
    --sample-frac <f>    fraction of the fleet sampled into each aggregation
                         block's cohort (default 0.05; fleet mode only)
    --top-m <n>          factored planner shortlist width: cross-LAN migration
                         candidates per participant (default 8)
    --seed <n>           master seed (default 7)
    --csv <path>         write the per-epoch curve as CSV
    --diag               enable learning-dynamics diagnostics (EMD/drift/DRL
                         gauges and per-migration EMD-delta logs); strictly
                         observation-only — results are byte-identical
    --flight-out <path>  record a JSONL flight recording of the run (implies
                         the diagnostics; inspect with fedmigr_report,
                         gate with fedmigr_diff)
    --timeline-out <path> record the round timeline (JSONL): per-client
                         train/wait/upload/migrate/idle/stale intervals plus,
                         on the flow transport, per-flow lifecycle events and
                         per-link utilization series; observation-only —
                         results are byte-identical (analyze with
                         fedmigr_netview, validate with telemetry_validate)
    --chrome-out <path>  also convert the timeline to Chrome trace-event
                         JSON viewable in Perfetto (needs --timeline-out)
    --log-level <spec>   log verbosity: error|warn|info|debug|trace, with
                         per-target overrides like debug,drl=trace,net=off
                         (default info; FEDMIGR_LOG is honoured too)
    --trace-out <path>   write a JSONL trace of spans and log events
    --metrics-out <path> write a Prometheus-style metrics dump at exit
    --profile-out <path> enable the in-process profiler and write a
                         collapsed-stack report (flamegraph.pl / inferno
                         input) at exit; observation-only — results are
                         byte-identical with profiling on or off
    --profile-alloc      also count allocations per profiled scope (needs
                         --profile-out; writes <path>.alloc)
    --no-kcount          disable kernel FLOP/byte accounting and the
                         per-phase kernel table in the summary
    --help               print this help
";

fn main() {
    let args = Args::parse();
    // Same precedence as the bench binaries: flag > FEDMIGR_LOG > default.
    let log_env = std::env::var("FEDMIGR_LOG").ok();
    match Filter::resolve(args.log_level.as_deref(), log_env.as_deref()) {
        Ok(f) => fedmigr_telemetry::set_filter(f),
        Err(e) if args.log_level.is_some() => die(&format!("--log-level: {e}")),
        Err(e) => error!("cli", "ignoring FEDMIGR_LOG: {e}"),
    }
    if let Some(path) = &args.trace_out {
        if let Err(e) = fedmigr_telemetry::set_trace_file(path) {
            die(&format!("--trace-out {path}: {e}"));
        }
    }
    // Kernel accounting feeds the per-phase GFLOP/s table. Observation-only
    // (results are byte-identical either way), so it defaults to on.
    fedmigr::tensor::kcount::set_enabled(!args.no_kcount);
    if args.profile_alloc && args.profile_out.is_none() {
        die("--profile-alloc needs --profile-out");
    }
    if args.profile_out.is_some() {
        fedmigr_telemetry::profiler::set_enabled(true);
        fedmigr_telemetry::profiler::set_alloc_enabled(args.profile_alloc);
    }
    let scheme = match args.scheme.as_str() {
        "fedavg" => Scheme::FedAvg,
        "fedprox" => Scheme::fedprox(),
        "fedswap" => Scheme::FedSwap,
        "randmigr" => Scheme::RandMigr,
        "fedmigr" => Scheme::fedmigr(args.seed),
        "fedasync" => Scheme::fedasync(),
        other => die(&format!("unknown scheme {other:?}")),
    };
    let mut cfg = RunConfig::new(scheme, args.epochs);
    cfg.agg_interval = args.agg;
    cfg.lr = args.lr;
    cfg.batch_size = args.batch;
    cfg.eval_interval = args.eval;
    cfg.participation = args.participation;
    cfg.target_accuracy = args.target;
    cfg.dp = args.dp_eps.map(DpConfig::with_epsilon);
    cfg.codec = CodecConfig::parse(&args.codec)
        .unwrap_or_else(|| die(&format!("unknown codec {:?} (try --help)", args.codec)));
    if let Some(dropout) = args.dropout {
        if !(0.0..1.0).contains(&dropout) {
            die(&format!("--dropout must be in [0, 1), got {dropout}"));
        }
        cfg.fault = FaultConfig::edge_churn(dropout, args.fault_seed);
    }
    if let Some(stress) = args.net_stress {
        if !(0.0..1.0).contains(&stress) {
            die(&format!("--net-stress must be in [0, 1), got {stress}"));
        }
        cfg.fault.seed = args.fault_seed;
        cfg.fault = cfg.fault.with_network_stress(stress);
    }
    cfg.transport = match args.transport.as_str() {
        "lockstep" => TransportConfig::Lockstep,
        "flow" => TransportConfig::flow(args.seed),
        other => die(&format!("unknown transport {other:?} (try --help)")),
    };
    if let Some(spec) = &args.attack {
        cfg.attack = parse_attack(spec, args.fault_seed);
    }
    // A checkpoint directory without an explicit cadence snapshots every round.
    cfg.checkpoint_every = args.checkpoint_every.or(args.checkpoint_dir.as_ref().map(|_| 1));
    cfg.checkpoint_dir = args.checkpoint_dir.clone();
    cfg.resume = args.resume.clone();
    cfg.kill_at = args.kill_at;
    cfg.watchdog.enabled = args.watchdog;
    if let Some(f) = args.spike_factor {
        cfg.watchdog.spike_factor = f;
    }
    if let Some(n) = args.max_rollbacks {
        cfg.watchdog.max_rollbacks = n;
    }
    cfg.seed = args.seed;
    if args.chrome_out.is_some() && args.timeline_out.is_none() {
        die("--chrome-out needs --timeline-out");
    }
    cfg.diag = DiagConfig {
        enabled: args.diag,
        flight_out: args.flight_out.clone(),
        timeline_out: args.timeline_out.clone(),
    };

    let metrics = if args.fleet { run_fleet(&args, cfg) } else { run_dense(&args, cfg) };

    println!("scheme:           {}", metrics.scheme);
    println!("epochs run:       {}", metrics.epochs());
    println!("best accuracy:    {:.2}%", 100.0 * metrics.best_accuracy());
    println!("final accuracy:   {:.2}%", 100.0 * metrics.final_accuracy());
    let t = metrics.traffic();
    println!(
        "traffic:          {:.2} MB total (C2S {:.2}, LAN C2C {:.2}, cross-LAN C2C {:.2})",
        t.total() as f64 / 1e6,
        t.c2s as f64 / 1e6,
        t.c2c_local as f64 / 1e6,
        t.c2c_global as f64 / 1e6
    );
    println!("virtual time:     {:.1} s", metrics.sim_time());
    if let Some(phases) = metrics.phase_summary() {
        println!("{phases}");
    }
    if let Some(table) = fedmigr::core::kernels::kernel_table() {
        print!("{table}");
    }
    println!(
        "migrations:       {} local, {} cross-LAN",
        metrics.migrations_local, metrics.migrations_global
    );
    if args.fleet {
        if let Some(rss) = fedmigr_telemetry::rss::peak_rss_bytes() {
            println!("peak RSS:         {:.1} MB", rss as f64 / 1e6);
        }
    }
    if let Some(faults) = metrics.fault_summary() {
        println!("{faults}");
    }
    if let Some(recovery) = metrics.recovery_summary() {
        println!("{recovery}");
    }
    if let Some(compression) = metrics.compression_summary() {
        println!("{compression}");
    }
    if let Some(transport) = metrics.transport_summary() {
        println!("{transport}");
    }
    if metrics.target_reached {
        println!("stopped early:    target accuracy reached");
    }
    if metrics.budget_exhausted {
        println!("stopped early:    resource budget exhausted");
    }
    if let Some(path) = &args.csv {
        match std::fs::write(path, metrics.to_csv()) {
            Ok(()) => info!("cli", "wrote {path}"),
            Err(e) => {
                error!("cli", "error: failed to write --csv {path}: {e}");
                std::process::exit(2);
            }
        }
    }
    if let Some(path) = &args.metrics_out {
        match std::fs::write(path, fedmigr_telemetry::render_metrics()) {
            Ok(()) => info!("cli", "wrote {path}"),
            Err(e) => {
                error!("cli", "error: failed to write --metrics-out {path}: {e}");
                std::process::exit(2);
            }
        }
    }
    if let Some(path) = &args.profile_out {
        match std::fs::write(path, fedmigr_telemetry::profiler::collapsed_report()) {
            Ok(()) => info!("cli", "wrote {path}"),
            Err(e) => {
                error!("cli", "error: failed to write --profile-out {path}: {e}");
                std::process::exit(2);
            }
        }
        if args.profile_alloc {
            let apath = format!("{path}.alloc");
            match std::fs::write(&apath, fedmigr_telemetry::profiler::alloc_report()) {
                Ok(()) => info!("cli", "wrote {apath}"),
                Err(e) => {
                    error!("cli", "error: failed to write {apath}: {e}");
                    std::process::exit(2);
                }
            }
        }
    }
    if let (Some(chrome), Some(timeline)) = (&args.chrome_out, &args.timeline_out) {
        let result = std::fs::read_to_string(timeline)
            .map_err(|e| e.to_string())
            .and_then(|text| fedmigr::diag::TimelineRecording::parse(&text))
            .and_then(|rec| {
                std::fs::write(chrome, fedmigr::diag::chrome_trace(&rec)).map_err(|e| e.to_string())
            });
        match result {
            Ok(()) => info!("cli", "wrote {chrome}"),
            Err(e) => {
                error!("cli", "error: failed to write --chrome-out {chrome}: {e}");
                std::process::exit(2);
            }
        }
    }
    if args.trace_out.is_some() {
        fedmigr_telemetry::close_trace();
    }
}

/// Builds the dense federation (dataset, partition, full topology) and runs
/// the selected scheme over materialised clients.
fn run_dense(args: &Args, cfg: RunConfig) -> RunMetrics {
    let data_cfg = SyntheticConfig {
        num_classes: args.classes,
        ..SyntheticConfig::c10_like(args.samples, args.seed)
    };
    let data = SyntheticDataset::generate(&data_cfg);
    let k: usize = args.lans.iter().sum();
    let parts = match args.partition.as_str() {
        "iid" => partition_iid(&data.train, k, args.seed),
        "shards" => {
            let per = (data.train.num_classes() / k).max(1);
            partition_shards(&data.train, k, per, args.seed)
        }
        p if p.starts_with("dominant:") => {
            partition_dominant(&data.train, k, parse_suffix(p), args.seed)
        }
        p if p.starts_with("missing:") => {
            partition_missing_classes(&data.train, k, parse_suffix(p), args.seed)
        }
        p if p.starts_with("dirichlet:") => {
            partition_dirichlet(&data.train, k, parse_suffix(p), args.seed)
        }
        other => die(&format!("unknown partition {other:?}")),
    };
    let topo = Topology::new(&TopologyConfig::default_edge(args.lans.clone(), args.seed));
    let exp = Experiment::new(
        data.train,
        data.test,
        parts,
        topo,
        ClientCompute::testbed_mix(k),
        zoo::c10_cnn(3, 8, NetScale::Small, args.seed),
    );
    info!(
        "cli",
        "running {} on {k} clients ({} classes, partition {}) for up to {} epochs...",
        cfg.scheme.name(),
        args.classes,
        args.partition,
        args.epochs
    );
    exp.run(&cfg)
}

/// Builds the lazy sharded fleet (dormant stubs, O(LANs) topology) and runs
/// the selected scheme with per-block cohort activation.
fn run_fleet(args: &Args, mut cfg: RunConfig) -> RunMetrics {
    if args.partition != "shards" {
        die("--fleet draws per-client label marginals itself; --partition is not supported");
    }
    if args.classes != 10 {
        die("--fleet runs the 10-class synthetic world; --classes is not supported");
    }
    if !(0.0..=1.0).contains(&args.sample_frac) || args.sample_frac <= 0.0 {
        die(&format!("--sample-frac must be in (0, 1], got {}", args.sample_frac));
    }
    cfg.fleet = Some(FleetOptions { sample_frac: args.sample_frac, top_m: args.top_m });
    info!(
        "cli",
        "running {} on a fleet of {} clients across {} LANs (cohort {:.1}%) for up to {} \
         epochs...",
        cfg.scheme.name(),
        args.fleet_clients,
        args.fleet_lans,
        100.0 * args.sample_frac,
        args.epochs
    );
    let mut exp = FleetExperiment::synthetic(
        args.fleet_clients,
        args.fleet_lans,
        args.samples,
        16,
        args.seed,
        zoo::c10_cnn(3, 8, NetScale::Small, args.seed),
    );
    exp.run(&cfg)
}

struct Args {
    scheme: String,
    partition: String,
    classes: usize,
    samples: usize,
    lans: Vec<usize>,
    epochs: usize,
    agg: usize,
    lr: f32,
    batch: usize,
    eval: usize,
    participation: f64,
    codec: String,
    dp_eps: Option<f64>,
    target: Option<f64>,
    dropout: Option<f64>,
    net_stress: Option<f64>,
    transport: String,
    attack: Option<String>,
    checkpoint_every: Option<usize>,
    checkpoint_dir: Option<String>,
    resume: Option<String>,
    kill_at: Option<usize>,
    watchdog: bool,
    spike_factor: Option<f64>,
    max_rollbacks: Option<usize>,
    fault_seed: u64,
    fleet: bool,
    fleet_clients: usize,
    fleet_lans: usize,
    sample_frac: f64,
    top_m: usize,
    seed: u64,
    csv: Option<String>,
    diag: bool,
    flight_out: Option<String>,
    timeline_out: Option<String>,
    chrome_out: Option<String>,
    log_level: Option<String>,
    trace_out: Option<String>,
    metrics_out: Option<String>,
    profile_out: Option<String>,
    profile_alloc: bool,
    no_kcount: bool,
}

impl Args {
    fn parse() -> Self {
        let mut out = Self {
            scheme: "fedmigr".into(),
            partition: "shards".into(),
            classes: 10,
            samples: 80,
            lans: vec![4, 3, 3],
            epochs: 150,
            agg: 10,
            lr: 0.01,
            batch: 32,
            eval: 10,
            participation: 1.0,
            codec: "identity".into(),
            dp_eps: None,
            target: None,
            dropout: None,
            net_stress: None,
            transport: "lockstep".into(),
            attack: None,
            checkpoint_every: None,
            checkpoint_dir: None,
            resume: None,
            kill_at: None,
            watchdog: false,
            spike_factor: None,
            max_rollbacks: None,
            fault_seed: 13,
            fleet: false,
            fleet_clients: 10_000,
            fleet_lans: 10,
            sample_frac: 0.05,
            top_m: 8,
            seed: 7,
            csv: None,
            diag: false,
            flight_out: None,
            timeline_out: None,
            chrome_out: None,
            log_level: None,
            trace_out: None,
            metrics_out: None,
            profile_out: None,
            profile_alloc: false,
            no_kcount: false,
        };
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < argv.len() {
            let flag = argv[i].as_str();
            if flag == "--help" || flag == "-h" {
                print!("{HELP}");
                std::process::exit(0);
            }
            if flag == "--diag" {
                out.diag = true;
                i += 1;
                continue;
            }
            if flag == "--watchdog" {
                out.watchdog = true;
                i += 1;
                continue;
            }
            if flag == "--fleet" {
                out.fleet = true;
                i += 1;
                continue;
            }
            if flag == "--profile-alloc" {
                out.profile_alloc = true;
                i += 1;
                continue;
            }
            if flag == "--no-kcount" {
                out.no_kcount = true;
                i += 1;
                continue;
            }
            let value =
                argv.get(i + 1).unwrap_or_else(|| die(&format!("flag {flag} needs a value")));
            match flag {
                "--scheme" => out.scheme = value.clone(),
                "--partition" => out.partition = value.clone(),
                "--classes" => out.classes = parse(value, flag),
                "--samples" => out.samples = parse(value, flag),
                "--lans" => {
                    out.lans = value.split(',').map(|v| parse::<usize>(v, flag)).collect();
                }
                "--epochs" => out.epochs = parse(value, flag),
                "--agg" => out.agg = parse(value, flag),
                "--lr" => out.lr = parse(value, flag),
                "--batch" => out.batch = parse(value, flag),
                "--eval" => out.eval = parse(value, flag),
                "--participation" => out.participation = parse(value, flag),
                "--codec" => out.codec = value.clone(),
                "--dp-eps" => out.dp_eps = Some(parse(value, flag)),
                "--target" => out.target = Some(parse(value, flag)),
                "--dropout" => out.dropout = Some(parse(value, flag)),
                "--net-stress" => out.net_stress = Some(parse(value, flag)),
                "--transport" => out.transport = value.clone(),
                "--attack" => out.attack = Some(value.clone()),
                "--checkpoint-every" => out.checkpoint_every = Some(parse(value, flag)),
                "--checkpoint-dir" => out.checkpoint_dir = Some(value.clone()),
                "--resume" => out.resume = Some(value.clone()),
                "--kill-at" => out.kill_at = Some(parse(value, flag)),
                "--spike-factor" => out.spike_factor = Some(parse(value, flag)),
                "--max-rollbacks" => out.max_rollbacks = Some(parse(value, flag)),
                "--fault-seed" => out.fault_seed = parse(value, flag),
                "--fleet-clients" => out.fleet_clients = parse(value, flag),
                "--fleet-lans" => out.fleet_lans = parse(value, flag),
                "--sample-frac" => out.sample_frac = parse(value, flag),
                "--top-m" => out.top_m = parse(value, flag),
                "--seed" => out.seed = parse(value, flag),
                "--csv" => out.csv = Some(value.clone()),
                "--flight-out" => out.flight_out = Some(value.clone()),
                "--timeline-out" => out.timeline_out = Some(value.clone()),
                "--chrome-out" => out.chrome_out = Some(value.clone()),
                "--log-level" => out.log_level = Some(value.clone()),
                "--trace-out" => out.trace_out = Some(value.clone()),
                "--metrics-out" => out.metrics_out = Some(value.clone()),
                "--profile-out" => out.profile_out = Some(value.clone()),
                other => die(&format!("unknown flag {other:?} (try --help)")),
            }
            i += 2;
        }
        out
    }
}

fn parse<T: std::str::FromStr>(value: &str, flag: &str) -> T {
    value.parse().unwrap_or_else(|_| die(&format!("bad value {value:?} for {flag}")))
}

fn parse_attack(spec: &str, seed: u64) -> AttackConfig {
    let bad = || -> ! { die(&format!("bad attack spec {spec:?} (try --help)")) };
    let mut parts = spec.split(':');
    let kind = parts.next().unwrap_or_else(|| bad());
    let mut num = |what: &str| -> f64 {
        parts
            .next()
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| die(&format!("attack spec {spec:?}: bad or missing {what}")))
    };
    let cfg = match kind {
        "signflip" => AttackConfig::sign_flip(num("fraction"), seed),
        "gauss" => {
            let frac = num("fraction");
            AttackConfig::gaussian(frac, num("std"), seed)
        }
        "scaled" => {
            let frac = num("fraction");
            AttackConfig::scaled(frac, num("multiplier"), seed)
        }
        "nan" => AttackConfig::nan_inject(num("fraction"), seed),
        "labelflip" => AttackConfig::label_flip(num("fraction"), seed),
        _ => bad(),
    };
    if parts.next().is_some() {
        bad();
    }
    cfg
}

fn parse_suffix(spec: &str) -> f64 {
    let (_, v) = spec.split_once(':').expect("checked by caller");
    v.parse().unwrap_or_else(|_| die(&format!("bad numeric suffix in {spec:?}")))
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
