//! Facade crate re-exporting the FedMigr workspace.
//!
//! This crate stitches together the substrates built for the FedMigr
//! reproduction (tensor math, neural networks, synthetic datasets, the MEC
//! network simulator, the DDPG agent) with the core federated-learning
//! orchestration. Most users should start from [`core`] (the FL schemes and
//! experiment runner) and [`nn::zoo`] (the paper's model architectures).

pub use fedmigr_compress as compress;
pub use fedmigr_core as core;
pub use fedmigr_data as data;
pub use fedmigr_diag as diag;
pub use fedmigr_drl as drl;
pub use fedmigr_net as net;
pub use fedmigr_nn as nn;
pub use fedmigr_tensor as tensor;
