//! Workspace-local stand-in for the `rand` crate, covering exactly the API
//! surface this repository uses. The container this project builds in has
//! no network access and no registry cache, so external crates are vendored
//! as minimal shims (see `shims/README.md`).
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — fast, well
//! distributed and fully deterministic. Streams do **not** match upstream
//! `rand`; only self-consistency (same seed, same sequence) is guaranteed,
//! which is all the simulator relies on.

use std::ops::{Range, RangeInclusive};

/// Minimal core trait: a source of uniform `u64`s.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding by `u64`, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from the "standard" distribution (uniform over the type's
/// natural range; `[0, 1)` for floats).
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 / (1u32 << 24) as f32
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// A range samplable as a uniform distribution over `T`.
pub trait SampleRange<T> {
    /// Draws one value from `rng`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as StandardSample>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = <$t as StandardSample>::sample_standard(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A value from the standard distribution of `T`.
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// A uniform value from `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state; the
            // state is never all-zero because SplitMix64 is a bijection
            // composed with distinct increments.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self { s: [next(), next(), next(), next()] }
        }
    }

    impl StdRng {
        /// The raw xoshiro256++ state, for exact-position checkpointing.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator at an exact stream position captured by
        /// [`StdRng::state`]. The all-zero state is invalid for xoshiro and
        /// is rejected.
        pub fn from_state(s: [u64; 4]) -> Self {
            assert!(s.iter().any(|&w| w != 0), "all-zero xoshiro state");
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::RngCore;

    /// In-place slice shuffling (Fisher–Yates).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<f64>(), b.random::<f64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn floats_land_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.random();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.random_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.random_range(-4i32..=4);
            assert!((-4..=4).contains(&w));
            let f = rng.random_range(0.5f64..2.0);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation_and_mixes() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice ordered");
    }

    #[test]
    fn state_round_trip_resumes_the_exact_stream() {
        let mut a = StdRng::seed_from_u64(21);
        for _ in 0..17 {
            let _: u64 = a.random();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn mean_of_unit_draws_is_centered() {
        let mut rng = StdRng::seed_from_u64(13);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
