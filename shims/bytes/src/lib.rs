//! Workspace-local stand-in for the `bytes` crate: a cheaply cloneable,
//! sliceable byte buffer (`Bytes`), a growable writer (`BytesMut`) and the
//! `Buf`/`BufMut` access traits — exactly the surface the wire format and
//! checkpoint code use. See `shims/README.md` for why external crates are
//! vendored.

use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// An immutable, reference-counted byte buffer; clones and slices share the
/// underlying allocation.
#[derive(Clone, Debug, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Wraps a static byte slice.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self::from(bytes.to_vec())
    }

    /// Number of bytes in view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-view sharing the same allocation.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let start = match range.start_bound() {
            std::ops::Bound::Included(&s) => s,
            std::ops::Bound::Excluded(&s) => s + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            std::ops::Bound::Included(&e) => e + 1,
            std::ops::Bound::Excluded(&e) => e,
            std::ops::Bound::Unbounded => self.len(),
        };
        assert!(start <= end && end <= self.len(), "slice out of bounds");
        Bytes { data: Arc::clone(&self.data), start: self.start + start, end: self.start + end }
    }

    /// Splits off and returns the first `at` bytes, advancing `self` past
    /// them.
    ///
    /// # Panics
    /// Panics if `at > self.len()`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = self.slice(0..at);
        self.start += at;
        head
    }

    fn take(&mut self, n: usize) -> &[u8] {
        assert!(n <= self.len(), "buffer underflow: need {n}, have {}", self.len());
        let s = self.start;
        self.start += n;
        &self.data[s..s + n]
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Self { data: v.into(), start: 0, end }
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}

impl Eq for Bytes {}

/// Sequential reader over a byte buffer.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Skips `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64;

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32;

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32;
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        let _ = self.take(cnt);
    }

    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take(8).try_into().expect("8 bytes"))
    }

    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take(4).try_into().expect("4 bytes"))
    }

    fn get_f32_le(&mut self) -> f32 {
        f32::from_le_bytes(self.take(4).try_into().expect("4 bytes"))
    }
}

/// A growable byte writer; `freeze` converts it into [`Bytes`].
#[derive(Clone, Debug, Default)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    /// An empty writer with `capacity` bytes pre-allocated.
    pub fn with_capacity(capacity: usize) -> Self {
        Self { vec: Vec::with_capacity(capacity) }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.vec)
    }
}

/// Sequential writer into a byte buffer.
pub trait BufMut {
    /// Appends a raw byte slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.vec.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_round_trips() {
        let mut w = BytesMut::with_capacity(16);
        w.put_u64_le(7);
        w.put_u32_le(9);
        w.put_f32_le(1.5);
        w.put_slice(b"ab");
        let mut b = w.freeze();
        assert_eq!(b.len(), 18);
        assert_eq!(b.get_u64_le(), 7);
        assert_eq!(b.get_u32_le(), 9);
        assert_eq!(b.get_f32_le(), 1.5);
        assert_eq!(&b[..], b"ab");
    }

    #[test]
    fn slices_share_and_bound_check() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[1, 2, 3]);
        let s2 = s.slice(1..=1);
        assert_eq!(&s2[..], &[2]);
    }

    #[test]
    fn split_to_advances() {
        let mut b = Bytes::from(vec![9, 8, 7, 6]);
        let head = b.split_to(2);
        assert_eq!(&head[..], &[9, 8]);
        assert_eq!(&b[..], &[7, 6]);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn reading_past_end_panics() {
        let mut b = Bytes::from(vec![1, 2]);
        let _ = b.get_u64_le();
    }
}
