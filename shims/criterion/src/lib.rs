//! Workspace-local stand-in for `criterion`: a plain timing harness with
//! the same macro/builder surface the repository's benches use. It prints
//! mean wall-clock per iteration instead of criterion's full statistics.
//! See `shims/README.md` for why external crates are vendored.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    test_mode: bool,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` invokes bench binaries with `--test`; run each body
        // once in that mode instead of timing it.
        let test_mode = std::env::args().any(|a| a == "--test");
        Self { test_mode, sample_size: 20 }
    }
}

impl Criterion {
    /// Times one benchmark closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            test_mode: self.test_mode,
            sample_size: self.sample_size,
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        b.report(name);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string() }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    /// Times one parameterized benchmark.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            test_mode: self.criterion.test_mode,
            sample_size: self.criterion.sample_size,
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.label));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifier of one parameterized benchmark case.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> Self {
        Self { label: format!("{name}/{param}") }
    }
}

/// Runs and times the benchmark body.
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Calls `f` repeatedly and records mean wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            self.iters = 1;
            return;
        }
        // Short warmup, then timed samples.
        for _ in 0..3.min(self.sample_size) {
            black_box(f());
        }
        let start = Instant::now();
        for _ in 0..self.sample_size {
            black_box(f());
        }
        self.elapsed = start.elapsed();
        self.iters = self.sample_size as u64;
    }

    fn report(&self, name: &str) {
        if self.test_mode {
            println!("{name}: ok (test mode)");
        } else if self.iters > 0 {
            let per_iter = self.elapsed.as_nanos() / self.iters as u128;
            println!("{name}: {per_iter} ns/iter ({} iters)", self.iters);
        }
    }
}

/// Declares a function running the given benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_example(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("grp");
        group.sample_size(5);
        group.bench_with_input(BenchmarkId::new("sq", 3), &3u64, |b, &x| b.iter(|| x * x));
        group.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default();
        bench_example(&mut c);
    }
}
