//! Workspace-local stand-in for `serde`: marker traits plus no-op derives.
//!
//! The repository annotates config structs with `#[derive(Serialize,
//! Deserialize)]` for downstream consumers but never serializes through
//! serde itself, so the shim only needs the names to resolve. See
//! `shims/README.md` for why external crates are vendored.

pub use serde_derive::{Deserialize, Serialize};

/// Marker counterpart of `serde::Serialize`.
pub trait Serialize {}

/// Marker counterpart of `serde::Deserialize`.
pub trait Deserialize<'de> {}
