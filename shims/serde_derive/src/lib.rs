//! No-op `Serialize`/`Deserialize` derives for the workspace-local serde
//! shim. The repository only uses the derives as declarative decoration
//! (nothing is actually serialized through serde), so expanding to nothing
//! is sufficient and keeps the offline build dependency-free.

use proc_macro::TokenStream;

/// Expands to nothing; the shim's `Serialize` is a marker.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; the shim's `Deserialize` is a marker.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
