//! Workspace-local stand-in for `proptest`, covering the subset this
//! repository uses: the `proptest!` macro over `ident in strategy`
//! arguments, range and collection strategies, `any`, and the
//! `prop_assert*`/`prop_assume` macros. See `shims/README.md` for why
//! external crates are vendored.
//!
//! Differences from upstream: no shrinking (failures report the raw case),
//! no persistence of regression files, and generation streams differ. Case
//! count defaults to 64 and can be overridden with `PROPTEST_CASES`.

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case violated an assumption (`prop_assume!`); it is skipped.
    Reject(String),
    /// The case failed an assertion (`prop_assert*`); the test fails.
    Fail(String),
}

/// A source of generated values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Types with a canonical "whole domain" strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.random()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.random()
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.random()
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.random::<u64>() as usize
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.random()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.random()
    }
}

/// Strategy over the whole domain of `T` (see [`any`]).
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive length range for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// A strategy for `Vec`s with lengths in `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }
}

/// Namespace alias so `prop::collection::vec(..)` resolves as upstream.
pub mod prop {
    pub use crate::collection;
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{any, Arbitrary, Strategy, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Executes the generated case-loop for one `proptest!` test. `name` seeds
/// the generator, so each test has a stable, deterministic stream.
pub fn run_cases(name: &str, mut case: impl FnMut(&mut StdRng) -> Result<(), TestCaseError>) {
    let cases: usize =
        std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(64);
    // FNV-1a over the test path: deterministic and independent of link order.
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut passed = 0usize;
    let mut rejected = 0usize;
    while passed < cases {
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected <= cases * 50,
                    "{name}: too many rejected cases ({rejected}); weaken prop_assume!"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("{name}: property failed after {passed} passing cases: {msg}")
            }
        }
    }
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Declares property tests: each function's `ident in strategy` arguments
/// are sampled per case and the body runs with `prop_assert*` semantics.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases(concat!(module_path!(), "::", stringify!($name)), |__pt_rng| {
                    $(let $arg = $crate::Strategy::sample(&($strat), __pt_rng);)*
                    (move || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })()
                });
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// Range strategies stay in bounds.
        #[test]
        fn ranges_in_bounds(k in 3usize..9, x in -1.5f64..2.5) {
            prop_assert!((3..9).contains(&k));
            prop_assert!((-1.5..2.5).contains(&x));
        }

        /// Vec strategies respect their size range.
        #[test]
        fn vec_sizes(v in prop::collection::vec(any::<bool>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        /// Exact-size collections are exact.
        #[test]
        fn vec_exact(v in prop::collection::vec(0.0f32..1.0, 4)) {
            prop_assert_eq!(v.len(), 4);
        }

        /// Assumptions reject without failing.
        #[test]
        fn assume_filters(k in 0usize..10) {
            prop_assume!(k % 2 == 0);
            prop_assert!(k % 2 == 0);
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failing_property_panics() {
        crate::run_cases("always_fails", |_| Err(crate::TestCaseError::Fail("nope".into())));
    }
}
