//! Privacy-preserving FedMigr: every transmitted model is clipped (Eq. 30)
//! and perturbed with Gaussian noise (Eq. 31) under an (ε, δ)-LDP budget.
//!
//! ```sh
//! cargo run --release --example privacy_preserving
//! ```

use fedmigr::core::{DpConfig, Experiment, RunConfig, Scheme};
use fedmigr::data::{partition_shards, SyntheticConfig, SyntheticDataset};
use fedmigr::net::{ClientCompute, Topology, TopologyConfig};
use fedmigr::nn::zoo::{c10_cnn, NetScale};

fn main() {
    let seed = 13;
    let data = SyntheticDataset::generate(&SyntheticConfig::c10_like(60, seed));
    let parts = partition_shards(&data.train, 10, 1, seed);
    let exp = Experiment::new(
        data.train,
        data.test,
        parts,
        Topology::new(&TopologyConfig::c10_sim(seed)),
        ClientCompute::testbed_mix(10),
        c10_cnn(3, 8, NetScale::Small, seed),
    );

    println!("{:<12} {:>10} {:>10}", "budget", "sigma", "accuracy");
    for eps in [f64::INFINITY, 4000.0, 2000.0] {
        let mut cfg = RunConfig::new(Scheme::fedmigr(seed), 60);
        cfg.lr = 0.01;
        cfg.seed = seed;
        let label = if eps.is_infinite() {
            cfg.dp = None;
            "eps = inf".to_string()
        } else {
            let dp = DpConfig::with_epsilon(eps);
            cfg.dp = Some(dp);
            format!("eps = {eps}")
        };
        let sigma = cfg.dp.map(|d| d.sigma()).unwrap_or(0.0);
        let m = exp.run(&cfg);
        println!("{label:<12} {sigma:>10.4} {:>9.1}%", 100.0 * m.best_accuracy());
    }
    println!("\nSmaller budgets add more noise per transmission; accuracy");
    println!("degrades gracefully while migrated models stay private.");
}
