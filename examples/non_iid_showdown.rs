//! Non-IID showdown: the paper's headline comparison — FedAvg vs FedMigr
//! (plus the RandMigr ablation) when every client holds a single class.
//!
//! ```sh
//! cargo run --release --example non_iid_showdown
//! ```

use fedmigr::core::{Experiment, RunConfig, Scheme};
use fedmigr::data::{partition_shards, SyntheticConfig, SyntheticDataset};
use fedmigr::net::{ClientCompute, Topology, TopologyConfig};
use fedmigr::nn::zoo::{c10_cnn, NetScale};

fn main() {
    let seed = 11;
    let data = SyntheticDataset::generate(&SyntheticConfig::c10_like(80, seed));
    let parts = partition_shards(&data.train, 10, 1, seed);
    let exp = Experiment::new(
        data.train,
        data.test,
        parts,
        Topology::new(&TopologyConfig::c10_sim(seed)),
        ClientCompute::testbed_mix(10),
        c10_cnn(3, 8, NetScale::Small, seed),
    );

    println!(
        "{:<10} {:>9} {:>12} {:>12} {:>9}",
        "scheme", "accuracy", "traffic(MB)", "C2S(MB)", "time(s)"
    );
    for scheme in [Scheme::FedAvg, Scheme::RandMigr, Scheme::fedmigr(seed)] {
        let mut cfg = RunConfig::new(scheme.clone(), 100);
        cfg.lr = 0.01;
        cfg.seed = seed;
        let m = exp.run(&cfg);
        println!(
            "{:<10} {:>8.1}% {:>12.2} {:>12.2} {:>9.0}",
            scheme.name(),
            100.0 * m.best_accuracy(),
            m.traffic().total() as f64 / 1e6,
            m.traffic().c2s as f64 / 1e6,
            m.sim_time(),
        );
    }
    println!("\nFedMigr should match or beat FedAvg's accuracy while moving");
    println!("most bytes over cheap LAN links instead of the WAN.");
}
