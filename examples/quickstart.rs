//! Quickstart: run FedMigr on a small non-IID federation and print the
//! learning curve.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use fedmigr::core::{Experiment, RunConfig, Scheme};
use fedmigr::data::{partition_shards, SyntheticConfig, SyntheticDataset};
use fedmigr::net::{ClientCompute, DeviceTier, Topology, TopologyConfig};
use fedmigr::nn::zoo::{c10_cnn, NetScale};

fn main() {
    // 1. A CIFAR-10-like synthetic dataset, split one-class-per-client over
    //    10 clients (the paper's hardest non-IID layout).
    let data = SyntheticDataset::generate(&SyntheticConfig::c10_like(60, 7));
    let parts = partition_shards(&data.train, 10, 1, 7);

    // 2. An MEC topology: 3 LANs behind one edge server, heterogeneous
    //    devices.
    let topo = Topology::new(&TopologyConfig::c10_sim(7));
    let compute = ClientCompute::homogeneous(10, DeviceTier::Nx);

    // 3. The experiment: the paper's C10-CNN at simulator scale.
    let exp = Experiment::new(
        data.train,
        data.test,
        parts,
        topo,
        compute,
        c10_cnn(3, 8, NetScale::Small, 7),
    );

    // 4. Run FedMigr: DRL-guided model migration between clients, global
    //    aggregation every 10 epochs.
    let mut cfg = RunConfig::new(Scheme::fedmigr(7), 60);
    cfg.lr = 0.01;
    cfg.eval_interval = 10;
    let metrics = exp.run(&cfg);

    println!("epoch  loss   accuracy  traffic(MB)  time(s)");
    for r in metrics.records.iter().filter(|r| r.test_accuracy.is_some()) {
        println!(
            "{:>5}  {:>5.3}  {:>7.1}%  {:>10.2}  {:>7.0}",
            r.epoch,
            r.train_loss,
            100.0 * r.test_accuracy.unwrap(),
            r.traffic.total() as f64 / 1e6,
            r.sim_time,
        );
    }
    println!(
        "\nfinal accuracy {:.1}% | migrations: {} local, {} cross-LAN",
        100.0 * metrics.final_accuracy(),
        metrics.migrations_local,
        metrics.migrations_global,
    );
}
