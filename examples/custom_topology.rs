//! Custom topology: build your own MEC network — LAN layout, link speeds,
//! jitter — and watch FedMigr route migrations over the fast links.
//!
//! ```sh
//! cargo run --release --example custom_topology
//! ```

use fedmigr::core::{Experiment, RunConfig, Scheme};
use fedmigr::data::{partition_shards, SyntheticConfig, SyntheticDataset};
use fedmigr::net::{ClientCompute, LinkClass, Topology, TopologyConfig};
use fedmigr::nn::zoo::{c10_cnn, NetScale};

fn main() {
    let seed = 19;
    // Two big LANs and two isolated clients; a slow 8 Mbps WAN; 40% of
    // cross-LAN links congested; 10% per-epoch bandwidth jitter.
    let topo = Topology::new(&TopologyConfig {
        lan_sizes: vec![4, 4, 1, 1],
        c2s_bandwidth: 1.0e6,
        lan_bandwidth: 5.0e7,
        cross_moderate_bandwidth: 8.0e6,
        cross_slow_bandwidth: 1.0e6,
        slow_fraction: 0.4,
        backbone_bandwidth: 1.6e7,
        jitter: 0.1,
        c2s_latency: 0.05,
        c2c_latency: 0.01,
        seed,
    });
    let k = topo.num_clients();

    let data = SyntheticDataset::generate(&SyntheticConfig::c10_like(60, seed));
    let parts = partition_shards(&data.train, k, 1, seed);
    let exp = Experiment::new(
        data.train,
        data.test,
        parts,
        topo,
        ClientCompute::testbed_mix(k),
        c10_cnn(3, 8, NetScale::Small, seed),
    );

    let mut cfg = RunConfig::new(Scheme::fedmigr(seed), 80);
    cfg.lr = 0.01;
    cfg.seed = seed;
    let m = exp.run(&cfg);

    println!("accuracy {:.1}% after {} epochs", 100.0 * m.best_accuracy(), m.epochs());
    println!(
        "traffic: {:.2} MB total ({:.2} MB over the WAN)",
        m.traffic().total() as f64 / 1e6,
        m.traffic().c2s as f64 / 1e6
    );

    // Migration counts per link class: the DRL agent's λ-cost term steers
    // migrations onto fast links.
    let mut per_class = [(0u64, 0u64); 3];
    for i in 0..k {
        for j in 0..k {
            if i == j {
                continue;
            }
            let idx = match exp.topology().link_class(i, j) {
                LinkClass::Fast => 0,
                LinkClass::Moderate => 1,
                LinkClass::Slow => 2,
            };
            per_class[idx].0 += m.link_migrations[i * k + j] as u64;
            per_class[idx].1 += 1;
        }
    }
    for (name, (migr, links)) in ["fast", "moderate", "slow"].iter().zip(per_class) {
        println!(
            "{name:>8} links: {migr:>4} migrations over {links} links ({:.2}/link)",
            migr as f64 / links.max(1) as f64
        );
    }
}
