//! End-to-end wire-compression tests: the identity codec reproduces the
//! uncompressed byte accounting bit-for-bit, lossy codecs charge exactly
//! their encoded sizes on every path, and int8 with error feedback learns
//! within two accuracy points of uncompressed on the smoke configuration.

use fedmigr::compress::{Codec, CodecConfig, WireCodec};
use fedmigr::core::{Experiment, RunConfig, Scheme};
use fedmigr::data::{partition_shards, SyntheticConfig, SyntheticDataset};
use fedmigr::net::{ClientCompute, DeviceTier, Topology, TopologyConfig};
use fedmigr::nn::zoo::{self, NetScale};

const K: usize = 4;

fn experiment(seed: u64) -> Experiment {
    let data = SyntheticDataset::generate(&SyntheticConfig {
        num_classes: 4,
        train_per_class: 24,
        test_per_class: 8,
        channels: 1,
        hw: 8,
        noise_std: 0.8,
        class_sep: 1.0,
        atom_bank: 6,
        atoms_per_class: 2,
        private_frac: 0.5,
        seed,
    });
    let parts = partition_shards(&data.train, K, 1, seed);
    Experiment::new(
        data.train,
        data.test,
        parts,
        Topology::new(&TopologyConfig::default_edge(vec![2, 2], seed)),
        ClientCompute::homogeneous(K, DeviceTier::Nx),
        zoo::c10_cnn(1, 8, NetScale::Small, seed),
    )
}

fn num_params() -> usize {
    zoo::c10_cnn(1, 8, NetScale::Small, 5).num_params()
}

fn config(scheme: Scheme, epochs: usize, codec: CodecConfig) -> RunConfig {
    let mut cfg = RunConfig::new(scheme, epochs);
    cfg.agg_interval = 4;
    cfg.eval_interval = 4;
    cfg.batch_size = 16;
    cfg.lr = 0.02;
    cfg.seed = 5;
    cfg.codec = codec;
    cfg
}

#[test]
fn identity_codec_is_byte_identical_to_the_default_path() {
    let exp = experiment(5);
    let mut defaulted = RunConfig::new(Scheme::RandMigr, 8);
    defaulted.agg_interval = 4;
    defaulted.eval_interval = 4;
    defaulted.batch_size = 16;
    defaulted.lr = 0.02;
    defaulted.seed = 5;
    let explicit = config(Scheme::RandMigr, 8, CodecConfig::Identity);
    let a = exp.run(&defaulted);
    let b = exp.run(&explicit);
    assert_eq!(a.to_csv(), b.to_csv(), "explicit identity must equal the default");
    assert_eq!(a.bytes_saved(), 0);
    assert_eq!(a.codec, "identity");
    assert!(a.compression_summary().is_none(), "identity reports no compression");
    // Identity stats still meter every encode losslessly.
    assert!(a.compression.encodes > 0);
    assert_eq!(a.compression.compressed_bytes, a.compression.uncompressed_bytes);
    assert_eq!(a.compression.sum_sq_error, 0.0);
}

#[test]
fn lossy_runs_replay_bit_for_bit() {
    let exp = experiment(5);
    for codec in [CodecConfig::int8(), CodecConfig::stochastic8(5), CodecConfig::topk(0.25)] {
        let cfg = config(Scheme::FedAvg, 8, codec.clone());
        let a = exp.run(&cfg);
        let b = exp.run(&cfg);
        assert_eq!(a.to_csv(), b.to_csv(), "{}: lossy runs must be deterministic", codec.name());
        assert_eq!(a.compression, b.compression, "{}", codec.name());
    }
}

#[test]
fn compressed_fedavg_traffic_is_exactly_accounted() {
    let epochs = 8;
    let codec_cfg = CodecConfig::int8();
    let enc = Codec::from_config(&codec_cfg).encoded_size(num_params());
    let flat = zoo::c10_cnn(1, 8, NetScale::Small, 5).wire_bytes();
    assert!(enc * 3 < flat, "int8 must shrink the model at least 3x");

    let m = experiment(5).run(&config(Scheme::FedAvg, epochs, codec_cfg));
    // The same transfer count as the uncompressed path (initial
    // distribution plus 2K per epoch), each charged at the encoded size.
    let transfers = K as u64 * (1 + 2 * epochs as u64);
    assert_eq!(m.traffic().c2s, transfers * enc);
    assert_eq!(m.traffic().c2c_local + m.traffic().c2c_global, 0);
    // bytes_saved is exactly the per-transfer saving times the transfers.
    assert_eq!(m.bytes_saved(), transfers * (flat - enc));
    assert!(m.compression_summary().is_some());
}

#[test]
fn compressed_migration_traffic_matches_move_counts() {
    let codec_cfg = CodecConfig::topk_int8(0.25);
    let enc = Codec::from_config(&codec_cfg).encoded_size(num_params());
    let m = experiment(5).run(&config(Scheme::RandMigr, 8, codec_cfg));
    let moves = (m.migrations_local + m.migrations_global) as u64;
    assert!(moves > 0, "random migration must move models");
    assert_eq!(m.traffic().c2c_local + m.traffic().c2c_global, moves * enc);
    assert_eq!(m.traffic().c2s % enc, 0, "C2S must charge whole encoded models");
}

#[test]
fn int8_with_error_feedback_stays_within_two_points_of_uncompressed() {
    let exp = experiment(5);
    let epochs = 12;
    let plain = exp.run(&config(Scheme::FedAvg, epochs, CodecConfig::Identity));
    let squeezed = exp.run(&config(Scheme::FedAvg, epochs, CodecConfig::int8()));
    assert_eq!(squeezed.epochs(), epochs);
    let (a, b) = (plain.final_accuracy(), squeezed.final_accuracy());
    assert!(
        a - b <= 0.02,
        "int8+ef accuracy {b:.4} fell more than 2 points below uncompressed {a:.4}"
    );
    assert!(squeezed.compression.ratio() >= 3.0, "ratio {}", squeezed.compression.ratio());
    assert!(squeezed.bytes_saved() > 0);
}

#[test]
fn every_scheme_completes_under_every_codec() {
    let exp = experiment(5);
    for codec in [CodecConfig::int8(), CodecConfig::int4(), CodecConfig::topk(0.5)] {
        for scheme in [
            Scheme::FedAvg,
            Scheme::fedprox(),
            Scheme::FedSwap,
            Scheme::RandMigr,
            Scheme::fedmigr(5),
            Scheme::fedasync(),
        ] {
            let name = scheme.name();
            let m = exp.run(&config(scheme, 8, codec.clone()));
            assert_eq!(m.epochs(), 8, "{name} under {} truncated", codec.name());
            assert!(m.final_accuracy().is_finite(), "{name} under {} diverged", codec.name());
            assert!(m.compression.any(), "{name} under {} recorded nothing", codec.name());
        }
    }
}
