//! Integration tests of the privacy layer and the parameter wire format
//! as used across crates.

use fedmigr::core::{DpConfig, Experiment, RunConfig, Scheme};
use fedmigr::data::{partition_iid, SyntheticConfig, SyntheticDataset};
use fedmigr::net::{ClientCompute, DeviceTier, Topology, TopologyConfig};
use fedmigr::nn::params::{decode_params, encode_params, wire_size};
use fedmigr::nn::zoo::{self, NetScale};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn wire_format_round_trips_a_real_model() {
    let mut model = zoo::c10_cnn(3, 8, NetScale::Small, 1);
    let params = model.params();
    let encoded = encode_params(&params);
    assert_eq!(encoded.len() as u64, wire_size(params.len()));
    assert_eq!(model.wire_bytes(), wire_size(params.len()));
    let decoded = decode_params(encoded).expect("well-formed payload");
    assert_eq!(decoded, params);
}

#[test]
fn dp_noise_is_applied_per_transmission() {
    let dp = DpConfig::with_epsilon(100.0);
    let mut rng = StdRng::seed_from_u64(1);
    let base = vec![0.1f32; 1000];
    let mut a = base.clone();
    let mut b = base.clone();
    dp.apply(&mut a, &mut rng);
    dp.apply(&mut b, &mut rng);
    assert_ne!(a, b, "independent noise per call");
    assert_ne!(a, base);
}

fn tiny_experiment(seed: u64) -> Experiment {
    let data = SyntheticDataset::generate(&SyntheticConfig {
        num_classes: 4,
        train_per_class: 20,
        test_per_class: 10,
        channels: 1,
        hw: 8,
        noise_std: 0.6,
        class_sep: 1.0,
        atom_bank: 0,
        atoms_per_class: 0,
        private_frac: 0.0,
        seed,
    });
    let parts = partition_iid(&data.train, 4, seed);
    Experiment::new(
        data.train,
        data.test,
        parts,
        Topology::new(&TopologyConfig::default_edge(vec![2, 2], seed)),
        ClientCompute::homogeneous(4, DeviceTier::Nx),
        zoo::c10_cnn(1, 8, NetScale::Small, seed),
    )
}

#[test]
fn extreme_noise_destroys_learning_mild_noise_does_not() {
    let exp = tiny_experiment(7);
    let mut clean_cfg = RunConfig::new(Scheme::FedAvg, 12);
    clean_cfg.batch_size = 16;
    clean_cfg.eval_interval = 4;
    let clean = exp.run(&clean_cfg).best_accuracy();

    let mut mild_cfg = clean_cfg.clone();
    mild_cfg.dp = Some(DpConfig::with_epsilon(50_000.0));
    let mild = exp.run(&mild_cfg).best_accuracy();

    let mut harsh_cfg = clean_cfg.clone();
    harsh_cfg.dp = Some(DpConfig::with_epsilon(1.0));
    let harsh = exp.run(&harsh_cfg).best_accuracy();

    assert!(clean > 0.5, "baseline failed to learn: {clean}");
    assert!(mild > clean - 0.25, "mild noise too destructive: {mild} vs {clean}");
    assert!(harsh < clean, "harsh noise should hurt: {harsh} vs {clean}");
    assert!(harsh < 0.6, "eps=1 noise should roughly destroy learning: {harsh}");
}
