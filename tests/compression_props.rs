//! Property-based tests of the wire-compression codecs: quantization error
//! bounds, stochastic unbiasedness, top-k determinism, and exact byte
//! accounting across arbitrary vectors.

use fedmigr::compress::{Codec, CodecConfig, WireCodec, CHUNK};
use proptest::prelude::*;

/// All lossy codec configurations, for the sweep properties.
fn lossy_configs() -> Vec<CodecConfig> {
    vec![
        CodecConfig::int8(),
        CodecConfig::int4(),
        CodecConfig::stochastic8(3),
        CodecConfig::topk(0.3),
        CodecConfig::topk_int8(0.3),
    ]
}

proptest! {
    /// Deterministic uniform quantization never errs by more than half a
    /// quantization step, where the step is each chunk's range over the
    /// number of levels.
    #[test]
    fn quantization_error_is_at_most_half_a_step(
        values in prop::collection::vec(-100.0f32..100.0, 1..600),
    ) {
        for (bits, cfg) in [(8u32, CodecConfig::int8()), (4, CodecConfig::int4())] {
            let codec = Codec::from_config(&cfg);
            let decoded = codec.decode(&codec.encode(&values, 0)).expect("round trip");
            prop_assert_eq!(decoded.len(), values.len());
            let levels = ((1u32 << bits) - 1) as f32;
            for (chunk, out) in values.chunks(CHUNK).zip(decoded.chunks(CHUNK)) {
                let min = chunk.iter().cloned().fold(f32::INFINITY, f32::min);
                let max = chunk.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
                // Half a step, padded for f32 arithmetic on large ranges.
                let tol = (max - min) / levels / 2.0 + (max - min) * 1e-5 + 1e-6;
                for (&v, &d) in chunk.iter().zip(out) {
                    prop_assert!(
                        (v - d).abs() <= tol,
                        "bits {}: value {} decoded {} (tol {})", bits, v, d, tol
                    );
                }
            }
        }
    }

    /// Stochastic rounding is unbiased: averaged over many independent
    /// transmissions the decoded value converges on the input, beating the
    /// half-step bias a deterministic rounder is allowed.
    #[test]
    fn stochastic_rounding_is_unbiased_in_expectation(
        values in prop::collection::vec(-10.0f32..10.0, 2..12),
        seed in 0u64..1000,
    ) {
        let codec = Codec::from_config(&CodecConfig::stochastic8(seed));
        let rounds = 300u64;
        let mut mean = vec![0.0f64; values.len()];
        for r in 0..rounds {
            let d = codec.decode(&codec.encode(&values, r)).expect("round trip");
            for (m, x) in mean.iter_mut().zip(d) {
                *m += x as f64 / rounds as f64;
            }
        }
        let min = values.iter().cloned().fold(f32::INFINITY, f32::min);
        let max = values.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let step = ((max - min) / 255.0) as f64;
        // The mean of `rounds` Bernoulli roundings concentrates within a
        // small fraction of a step; a biased rounder would sit anywhere up
        // to step/2 away.
        let tol = step * 0.2 + 1e-6;
        for (&v, &m) in values.iter().zip(&mean) {
            prop_assert!((v as f64 - m).abs() <= tol, "value {} mean {} (tol {})", v, m, tol);
        }
    }

    /// Top-k selection is deterministic even under equal magnitudes: two
    /// encodes of the same vector are byte-identical, and with all-equal
    /// magnitudes the *lowest* indices win the tie-break.
    #[test]
    fn topk_is_deterministic_under_ties(
        signs in prop::collection::vec(any::<bool>(), 4..64),
        seed_a in 0u64..100,
        seed_b in 0u64..100,
    ) {
        let values: Vec<f32> =
            signs.iter().map(|&s| if s { 2.5 } else { -2.5 }).collect();
        let codec = Codec::from_config(&CodecConfig::topk(0.5));
        let a = codec.encode(&values, seed_a);
        let b = codec.encode(&values, seed_b);
        prop_assert!(a.bytes() == b.bytes(), "top-k must ignore the seed");
        let decoded = codec.decode(&a).expect("round trip");
        let k = (values.len() as f64 * 0.5).ceil() as usize;
        // Ties broken towards lower indices: the first k survive, the rest
        // are zeroed.
        for (i, (&v, &d)) in values.iter().zip(&decoded).enumerate() {
            if i < k {
                prop_assert!(d == v, "index {} should survive: {} vs {}", i, d, v);
            } else {
                prop_assert!(d == 0.0, "index {} should be dropped, got {}", i, d);
            }
        }
    }

    /// For every codec the blob on the wire is exactly the size the codec
    /// reports, for every vector length — byte accounting is never
    /// approximate.
    #[test]
    fn encoded_bytes_match_reported_size_exactly(
        values in prop::collection::vec(-50.0f32..50.0, 0..700),
        seed in 0u64..1000,
    ) {
        let mut configs = lossy_configs();
        configs.push(CodecConfig::Identity);
        for cfg in configs {
            let codec = Codec::from_config(&cfg);
            let blob = codec.encode(&values, seed);
            prop_assert!(
                blob.wire_bytes() == codec.encoded_size(values.len()),
                "codec {} length {}: wire {} vs reported {}",
                cfg.name(),
                values.len(),
                blob.wire_bytes(),
                codec.encoded_size(values.len())
            );
            prop_assert_eq!(blob.bytes().len() as u64, blob.wire_bytes());
            let decoded = codec.decode(&blob).expect("round trip");
            prop_assert_eq!(decoded.len(), values.len());
        }
    }

    /// The identity codec is bit-lossless for arbitrary finite vectors.
    #[test]
    fn identity_is_lossless(values in prop::collection::vec(-1e6f32..1e6, 0..256)) {
        let codec = Codec::from_config(&CodecConfig::Identity);
        let decoded = codec.decode(&codec.encode(&values, 9)).expect("round trip");
        prop_assert_eq!(decoded, values);
    }
}
