//! End-to-end integration tests: every scheme runs over the full stack
//! (synthetic data -> partition -> topology -> training -> migration ->
//! aggregation) and the resource accounting obeys exact invariants.

use fedmigr::core::{Experiment, RunConfig, Scheme};
use fedmigr::data::{partition_shards, SyntheticConfig, SyntheticDataset};
use fedmigr::net::{ClientCompute, DeviceTier, Topology, TopologyConfig};
use fedmigr::nn::zoo::{self, NetScale};

const K: usize = 4;

fn experiment(seed: u64) -> Experiment {
    let data = SyntheticDataset::generate(&SyntheticConfig {
        num_classes: 4,
        train_per_class: 24,
        test_per_class: 8,
        channels: 1,
        hw: 8,
        noise_std: 0.8,
        class_sep: 1.0,
        atom_bank: 6,
        atoms_per_class: 2,
        private_frac: 0.5,
        seed,
    });
    let parts = partition_shards(&data.train, K, 1, seed);
    Experiment::new(
        data.train,
        data.test,
        parts,
        Topology::new(&TopologyConfig::default_edge(vec![2, 2], seed)),
        ClientCompute::homogeneous(K, DeviceTier::Nx),
        zoo::c10_cnn(1, 8, NetScale::Small, seed),
    )
}

fn model_bytes() -> u64 {
    zoo::c10_cnn(1, 8, NetScale::Small, 5).wire_bytes()
}

fn config(scheme: Scheme, epochs: usize) -> RunConfig {
    let mut cfg = RunConfig::new(scheme, epochs);
    cfg.agg_interval = 4;
    cfg.eval_interval = 4;
    cfg.batch_size = 16;
    cfg.lr = 0.02;
    cfg.seed = 5;
    cfg
}

#[test]
fn fedavg_traffic_is_exactly_accounted() {
    let epochs = 8;
    let m = experiment(5).run(&config(Scheme::FedAvg, epochs));
    let bytes = model_bytes();
    // Initial distribution (K) plus 2K per epoch; no C2C at all.
    let expected = bytes * K as u64 * (1 + 2 * epochs as u64);
    assert_eq!(m.traffic().c2s, expected);
    assert_eq!(m.traffic().c2c_local + m.traffic().c2c_global, 0);
    assert_eq!(m.migrations_local + m.migrations_global, 0);
}

#[test]
fn migration_traffic_matches_move_counts() {
    let epochs = 8;
    let m = experiment(5).run(&config(Scheme::RandMigr, epochs));
    let bytes = model_bytes();
    let moves = (m.migrations_local + m.migrations_global) as u64;
    assert!(moves > 0, "random migration must move models");
    assert_eq!(m.traffic().c2c_local + m.traffic().c2c_global, moves * bytes);
    // C2S only for the initial distribution plus the 2 aggregation rounds.
    let aggs = epochs as u64 / 4;
    assert_eq!(m.traffic().c2s, bytes * K as u64 * (1 + 2 * aggs));
    // The per-link matrix agrees with the totals.
    let link_total: u64 = m.link_migrations.iter().map(|&c| c as u64).sum();
    assert_eq!(link_total, moves);
}

#[test]
fn fedswap_routes_everything_through_the_server() {
    let m = experiment(5).run(&config(Scheme::FedSwap, 8));
    assert_eq!(m.traffic().c2c_local + m.traffic().c2c_global, 0);
    // Swaps happened (models marked as migrated) but over C2S.
    assert!(m.traffic().c2s > 0);
}

#[test]
fn every_scheme_completes_and_learns_something() {
    for scheme in
        [Scheme::FedAvg, Scheme::fedprox(), Scheme::FedSwap, Scheme::RandMigr, Scheme::fedmigr(5)]
    {
        let name = scheme.name();
        let m = experiment(5).run(&config(scheme, 12));
        assert_eq!(m.epochs(), 12, "{name} truncated");
        assert!(m.final_accuracy() > 0.3, "{name} accuracy too low: {}", m.final_accuracy());
        // Virtual time and traffic are monotone over epochs.
        for w in m.records.windows(2) {
            assert!(w[1].sim_time >= w[0].sim_time, "{name} time went backwards");
            assert!(w[1].traffic.total() >= w[0].traffic.total(), "{name} traffic went backwards");
        }
    }
}

#[test]
fn fedmigr_uses_cheaper_global_communication_than_fedavg() {
    let avg = experiment(5).run(&config(Scheme::FedAvg, 12));
    let migr = experiment(5).run(&config(Scheme::fedmigr(5), 12));
    assert!(
        migr.traffic().c2s < avg.traffic().c2s / 2,
        "FedMigr C2S {} should be well below FedAvg {}",
        migr.traffic().c2s,
        avg.traffic().c2s
    );
}
