//! End-to-end fault-tolerance regression: the schemes complete full runs
//! under heavy injected churn, the fault accounting shows up in the
//! metrics, and accuracy stays within a sane band of the fault-free run.

use fedmigr::core::{Experiment, RunConfig, Scheme};
use fedmigr::data::{partition_shards, SyntheticConfig, SyntheticDataset};
use fedmigr::net::{ClientCompute, FaultConfig, Topology, TopologyConfig};
use fedmigr::nn::zoo::{self, NetScale};

const K: usize = 6;

fn experiment(seed: u64) -> Experiment {
    let data = SyntheticDataset::generate(&SyntheticConfig {
        num_classes: 4,
        train_per_class: 24,
        test_per_class: 8,
        channels: 1,
        hw: 8,
        noise_std: 0.8,
        class_sep: 1.0,
        atom_bank: 6,
        atoms_per_class: 2,
        private_frac: 0.5,
        seed,
    });
    let parts = partition_shards(&data.train, K, 1, seed);
    Experiment::new(
        data.train,
        data.test,
        parts,
        Topology::new(&TopologyConfig::default_edge(vec![3, 3], seed)),
        ClientCompute::testbed_mix(K),
        zoo::c10_cnn(1, 8, NetScale::Small, seed),
    )
}

fn config(scheme: Scheme, epochs: usize) -> RunConfig {
    let mut cfg = RunConfig::new(scheme, epochs);
    cfg.agg_interval = 4;
    cfg.eval_interval = 4;
    cfg.batch_size = 16;
    cfg.lr = 0.02;
    cfg.seed = 5;
    cfg
}

#[test]
fn fedmigr_completes_under_30_percent_dropout() {
    let exp = experiment(5);
    let epochs = 12;

    let clean = exp.run(&config(Scheme::fedmigr(5), epochs));

    let mut faulty_cfg = config(Scheme::fedmigr(5), epochs);
    faulty_cfg.fault = FaultConfig::edge_churn(0.3, 42);
    let faulty = exp.run(&faulty_cfg);

    // All epochs completed — no panic, no truncation.
    assert_eq!(faulty.epochs(), epochs, "faults must not end the run early");
    assert!(!faulty.budget_exhausted);

    // The fault counters are populated and surfaced.
    assert!(faulty.fault.client_drops > 0, "30% churn must register drops: {:?}", faulty.fault);
    assert!(faulty.fault_summary().is_some(), "run summary must mention faults");
    let recorded: usize = faulty.records.iter().map(|r| r.dropped_clients).sum();
    assert_eq!(recorded, faulty.fault.client_drops, "per-epoch and total drop counts agree");
    assert!(faulty.to_csv().lines().next().unwrap().contains("dropped_clients"));

    // Accuracy stays within a sane band of the fault-free run: losing ~30%
    // of client-epochs on a 12-epoch toy run costs real accuracy, but the
    // run must stay far above the 0.25 chance level for 4 classes and not
    // collapse relative to the clean run.
    let clean_acc = clean.final_accuracy();
    let faulty_acc = faulty.final_accuracy();
    assert!(faulty_acc > 0.35, "faulty run failed to learn: {faulty_acc}");
    assert!(
        faulty_acc >= clean_acc - 0.45,
        "faulty accuracy {faulty_acc} collapsed vs clean {clean_acc}"
    );

    // The clean run observed no faults at all.
    assert!(!clean.fault.any());
    assert!(clean.fault_summary().is_none());
}

#[test]
fn heavy_link_failures_reroute_instead_of_crashing() {
    let exp = experiment(5);
    let mut cfg = config(Scheme::RandMigr, 12);
    cfg.fault = FaultConfig::none();
    cfg.fault.link_outage_prob = 0.7;
    cfg.fault.seed = 9;
    let m = exp.run(&cfg);
    assert_eq!(m.epochs(), 12);
    assert!(m.fault.transfer_retries > 0, "70% link outage must trigger retries: {:?}", m.fault);
    assert!(
        m.fault.rerouted_migrations + m.fault.cancelled_migrations > 0,
        "some migrations must fall back or cancel: {:?}",
        m.fault
    );
    // Delivered + cancelled covers every planned move: nothing vanished.
    let delivered = m.migrations_local + m.migrations_global;
    assert!(delivered > 0, "not every migration may fail at these rates");
}

#[test]
fn identical_fault_runs_produce_identical_metrics() {
    let exp = experiment(7);
    let mut cfg = config(Scheme::RandMigr, 8);
    cfg.fault = FaultConfig::edge_churn(0.25, 3);
    let a = exp.run(&cfg);
    let b = exp.run(&cfg);
    assert_eq!(a.to_csv(), b.to_csv(), "fault runs must be bit-deterministic");
    assert_eq!(a.fault, b.fault);
    assert_eq!(a.migrations_local, b.migrations_local);
    assert_eq!(a.migrations_global, b.migrations_global);
}
