//! Property tests for the distribution/EMD arithmetic in `fedmigr-data`
//! (paper Sec. II-C): the metric axioms the diagnostics layer leans on, and
//! the migration-composition contraction the convergence argument needs.

use fedmigr::data::distribution::{emd_1d, l1_distance, normalized_emd, virtual_distribution};
use proptest::prelude::*;

fn histogram() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..1.0, 6)
}

fn normalize(v: &[f64]) -> Vec<f64> {
    let s: f64 = v.iter().sum::<f64>().max(1e-9);
    v.iter().map(|x| x / s).collect()
}

proptest! {
    /// EMD is symmetric in its arguments.
    #[test]
    fn emd_is_symmetric(a in histogram(), b in histogram()) {
        let d_ab = emd_1d(&a, &b);
        let d_ba = emd_1d(&b, &a);
        prop_assert!((d_ab - d_ba).abs() < 1e-12, "{d_ab} != {d_ba}");
        let n_ab = normalized_emd(&a, &b);
        let n_ba = normalized_emd(&b, &a);
        prop_assert!((n_ab - n_ba).abs() < 1e-12);
    }

    /// EMD is zero exactly when the distributions coincide: identical
    /// inputs give zero, and any coordinate-wise separation forces a
    /// strictly positive distance.
    #[test]
    fn emd_is_zero_iff_equal(a in histogram(), b in histogram()) {
        let (a, b) = (normalize(&a), normalize(&b));
        prop_assert!(emd_1d(&a, &a).abs() < 1e-12);
        let gap = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).fold(0.0f64, f64::max);
        if gap > 1e-9 {
            prop_assert!(emd_1d(&a, &b) > 0.0, "distinct histograms must be EMD-separated");
        }
    }

    /// Normalized EMD between probability histograms lies in [0, 1], with
    /// the plain EMD bounded by the label-axis diameter n - 1.
    #[test]
    fn normalized_emd_is_bounded_by_one(a in histogram(), b in histogram()) {
        let (a, b) = (normalize(&a), normalize(&b));
        let d = normalized_emd(&a, &b);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&d), "normalized EMD {d} outside [0, 1]");
        prop_assert!(emd_1d(&a, &b) <= (a.len() - 1) as f64 + 1e-12);
    }

    /// Composing a migration's virtual dataset (Eq. 13) never increases
    /// the EMD to the population, and each further migration hop keeps
    /// shrinking it — the Sec. II-C contraction, under the EMD the
    /// diagnostics actually report rather than the paper's L1.
    #[test]
    fn virtual_dataset_composition_never_increases_emd(
        local in prop::collection::vec(0usize..50, 2..8),
        m in 1usize..20,
        k in 2usize..30,
    ) {
        prop_assume!(local.iter().sum::<usize>() > 0);
        let pop: Vec<usize> = local.iter().map(|&c| c + 10).collect();
        let n: f64 = pop.iter().sum::<usize>() as f64;
        let q: Vec<f64> = pop.iter().map(|&c| c as f64 / n).collect();
        let n_k: f64 = local.iter().sum::<usize>() as f64;
        let q_k: Vec<f64> = local.iter().map(|&c| c as f64 / n_k).collect();

        let mut prev = normalized_emd(&q_k, &q);
        for hops in m..m + 3 {
            let q_virtual = virtual_distribution(&local, &pop, hops, k);
            let after = normalized_emd(&q_virtual, &q);
            prop_assert!(after <= prev + 1e-12, "EMD grew after migration: {after} > {prev}");
            prev = after;
        }
    }

    /// EMD refines L1: moving mass further along the label axis costs
    /// more, but EMD can never undercut half the L1 mass mismatch on
    /// adjacent labels. Sanity-bound both metrics against each other.
    #[test]
    fn emd_and_l1_agree_on_scale(a in histogram(), b in histogram()) {
        let (a, b) = (normalize(&a), normalize(&b));
        let emd = emd_1d(&a, &b);
        let l1 = l1_distance(&a, &b);
        // Each unit of |a_l - b_l| contributes at least half a unit of
        // transport work somewhere, and at most (n - 1) units.
        prop_assert!(emd >= l1 / 2.0 - 1e-12, "EMD {emd} below L1/2 {}", l1 / 2.0);
        prop_assert!(emd <= l1 * (a.len() - 1) as f64 + 1e-12);
    }
}
