//! Chaos kill-and-resume harness for the run-checkpoint subsystem.
//!
//! The crash-safety contract (DESIGN.md §11): a run killed at an arbitrary
//! round and resumed from its latest checkpoint must finish **byte-identical**
//! to the run that was never interrupted — same CSV export, same flight
//! recording — on both transports, with wire codecs, injected churn and a
//! Byzantine adversary all active. Kill rounds are drawn from a seeded
//! SplitMix64 stream so the chaos schedule is reproducible, and the lockstep
//! case kills twice to exercise repeated resume. A second contract covers
//! the divergence watchdog: a NaN-injection adversary against the plain
//! FedAvg mean must trigger a rollback, quarantine the implicated source and
//! still converge to a finite model.

use std::path::PathBuf;

use fedmigr::core::{
    CodecConfig, DiagConfig, Experiment, FleetExperiment, FleetOptions, RunConfig, Scheme,
    WatchdogConfig,
};
use fedmigr::data::{partition_shards, SyntheticConfig, SyntheticDataset};
use fedmigr::net::{
    AttackConfig, ClientCompute, FaultConfig, Topology, TopologyConfig, TransportConfig,
};
use fedmigr::nn::zoo::{self, NetScale};

const K: usize = 6;
const EPOCHS: usize = 10;

fn experiment(seed: u64) -> Experiment {
    let data = SyntheticDataset::generate(&SyntheticConfig {
        num_classes: 4,
        train_per_class: 24,
        test_per_class: 8,
        channels: 1,
        hw: 8,
        noise_std: 0.8,
        class_sep: 1.0,
        atom_bank: 6,
        atoms_per_class: 2,
        private_frac: 0.5,
        seed,
    });
    let parts = partition_shards(&data.train, K, 1, seed);
    Experiment::new(
        data.train,
        data.test,
        parts,
        Topology::new(&TopologyConfig::default_edge(vec![3, 3], seed)),
        ClientCompute::testbed_mix(K),
        zoo::c10_cnn(1, 8, NetScale::Small, seed),
    )
}

/// Everything-on configuration: wire codec, edge churn, sign-flip adversary
/// (which also arms the quarantine), the chosen transport.
fn stressed_config(transport: TransportConfig) -> RunConfig {
    let mut cfg = RunConfig::new(Scheme::fedmigr(5), EPOCHS);
    cfg.agg_interval = 4;
    cfg.eval_interval = 5;
    cfg.batch_size = 16;
    cfg.lr = 0.02;
    cfg.seed = 5;
    cfg.codec = CodecConfig::parse("topk-int8:0.25").expect("codec spec");
    cfg.fault = FaultConfig::edge_churn(0.15, 42);
    cfg.attack = AttackConfig::sign_flip(0.2, 9);
    cfg.transport = transport;
    cfg
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("fedmigr-chaos-{}-{name}", std::process::id()))
}

fn splitmix(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Runs the uninterrupted baseline, then a chaos twin killed at each of
/// `kill_rounds` in turn (resuming from the latest on-disk checkpoint after
/// every kill), and asserts the finished twin is byte-identical.
fn assert_kill_resume_identity(tag: &str, transport: TransportConfig, kill_rounds: &[usize]) {
    let base_flight = tmp(&format!("{tag}-base.jsonl"));
    let chaos_flight = tmp(&format!("{tag}-chaos.jsonl"));
    let ck_dir = tmp(&format!("{tag}-ck"));
    std::fs::create_dir_all(&ck_dir).unwrap();

    let mut base_cfg = stressed_config(transport);
    base_cfg.diag = DiagConfig {
        enabled: true,
        flight_out: Some(base_flight.to_string_lossy().into_owned()),
        ..DiagConfig::default()
    };
    let baseline = experiment(5).run(&base_cfg);
    assert_eq!(baseline.epochs(), EPOCHS);

    // First leg: run from scratch, die at kill_rounds[0].
    let mut cfg = stressed_config(transport);
    cfg.diag = DiagConfig {
        enabled: true,
        flight_out: Some(chaos_flight.to_string_lossy().into_owned()),
        ..DiagConfig::default()
    };
    cfg.checkpoint_every = Some(2);
    cfg.checkpoint_dir = Some(ck_dir.to_string_lossy().into_owned());
    cfg.kill_at = Some(kill_rounds[0]);
    let killed = experiment(5).run(&cfg);
    assert!(killed.epochs() < EPOCHS, "kill at {} must truncate the run", kill_rounds[0]);

    // Subsequent legs: resume from latest.fmrs, optionally dying again.
    let latest = ck_dir.join("latest.fmrs");
    for next_kill in kill_rounds[1..].iter().map(|&k| Some(k)).chain([None]) {
        assert!(latest.exists(), "killed run must leave a checkpoint behind");
        cfg.resume = Some(latest.to_string_lossy().into_owned());
        cfg.kill_at = next_kill;
        let resumed = experiment(5).run(&cfg);
        assert!(resumed.recovery.checkpoints_loaded >= 1, "resume must load a checkpoint");
        if next_kill.is_none() {
            assert_eq!(resumed.epochs(), EPOCHS, "resumed run must finish all rounds");
            assert_eq!(
                baseline.to_csv(),
                resumed.to_csv(),
                "[{tag}] kill@{kill_rounds:?}: resumed CSV must be byte-identical"
            );
            assert!(resumed.recovery.any() && resumed.recovery_summary().is_some());
        }
    }

    let base_bytes = std::fs::read(&base_flight).unwrap();
    let chaos_bytes = std::fs::read(&chaos_flight).unwrap();
    assert_eq!(
        base_bytes, chaos_bytes,
        "[{tag}] kill@{kill_rounds:?}: flight recording must be byte-identical"
    );

    let _ = std::fs::remove_file(&base_flight);
    let _ = std::fs::remove_file(&chaos_flight);
    let _ = std::fs::remove_dir_all(&ck_dir);
}

#[test]
fn killed_and_resumed_lockstep_run_is_byte_identical() {
    // Seeded chaos: two kill rounds, the second strictly after the first,
    // exercising resume-then-die-again-then-resume.
    let mut x = 0xc0ff_ee11_u64;
    let first = 2 + (splitmix(&mut x) % (EPOCHS as u64 / 2)) as usize;
    let second = first + 1 + (splitmix(&mut x) % (EPOCHS - first - 1) as u64) as usize;
    assert_kill_resume_identity("lockstep", TransportConfig::Lockstep, &[first, second]);
}

#[test]
fn killed_and_resumed_flow_run_is_byte_identical() {
    let mut x = 0xdead_beef_u64;
    let kill = 2 + (splitmix(&mut x) % (EPOCHS as u64 - 3)) as usize;
    assert_kill_resume_identity("flow", TransportConfig::flow(5), &[kill]);
}

/// Fleet-mode chaos: the lazy sharded runner checkpoints only at
/// aggregation-block boundaries (where every client is dormant and the
/// snapshot is just stubs + global model), so a kill at *any* round resumes
/// from the last boundary, deterministically replays the partial block —
/// cohort sampling, activation, training, migrations — and must still finish
/// byte-identical to the run that was never interrupted.
#[test]
fn killed_and_resumed_fleet_run_is_byte_identical() {
    const FLEET_EPOCHS: usize = 8;
    let fleet =
        || FleetExperiment::synthetic(48, 4, 24, 4, 11, zoo::c10_cnn(3, 8, NetScale::Small, 11));
    let fleet_cfg = || {
        let mut cfg = RunConfig::new(Scheme::fedmigr(11), FLEET_EPOCHS);
        cfg.agg_interval = 2;
        cfg.eval_interval = 2;
        cfg.batch_size = 8;
        cfg.max_batches_per_epoch = Some(2);
        cfg.lr = 0.05;
        cfg.seed = 11;
        cfg.fleet = Some(FleetOptions { sample_frac: 0.25, top_m: 4 });
        cfg
    };

    // Seeded chaos schedule: two kills, the second strictly after the first,
    // exercising resume-then-die-again-then-resume across block boundaries.
    let mut x = 0xf1ee_7001_u64;
    let first = 2 + (splitmix(&mut x) % (FLEET_EPOCHS as u64 / 2)) as usize;
    let second = first + 1 + (splitmix(&mut x) % (FLEET_EPOCHS - first - 1) as u64) as usize;

    let baseline = fleet().run(&fleet_cfg());
    assert_eq!(baseline.epochs(), FLEET_EPOCHS);
    assert!(
        baseline.migrations_local + baseline.migrations_global > 0,
        "the chaos run must actually migrate models"
    );

    let ck_dir = tmp("fleet-ck");
    std::fs::create_dir_all(&ck_dir).unwrap();
    let mut cfg = fleet_cfg();
    cfg.checkpoint_every = Some(2);
    cfg.checkpoint_dir = Some(ck_dir.to_string_lossy().into_owned());
    cfg.kill_at = Some(first);
    let killed = fleet().run(&cfg);
    assert!(killed.epochs() < FLEET_EPOCHS, "kill at {first} must truncate the run");

    let latest = ck_dir.join("latest.fmrs");
    for next_kill in [Some(second), None] {
        assert!(latest.exists(), "killed fleet run must leave a checkpoint behind");
        cfg.resume = Some(latest.to_string_lossy().into_owned());
        cfg.kill_at = next_kill;
        let resumed = fleet().run(&cfg);
        assert!(resumed.recovery.checkpoints_loaded >= 1, "resume must load a checkpoint");
        if next_kill.is_none() {
            assert_eq!(resumed.epochs(), FLEET_EPOCHS, "resumed run must finish all rounds");
            assert_eq!(
                baseline.to_csv(),
                resumed.to_csv(),
                "[fleet] kill@{:?}: resumed CSV must be byte-identical",
                [first, second]
            );
        }
    }
    let _ = std::fs::remove_dir_all(&ck_dir);
}

#[test]
fn watchdog_rolls_back_nan_divergence_and_converges() {
    let epochs = 14;
    let mut cfg = RunConfig::new(Scheme::FedAvg, epochs);
    cfg.agg_interval = 1;
    cfg.eval_interval = 7;
    cfg.batch_size = 16;
    cfg.lr = 0.02;
    cfg.seed = 5;
    cfg.attack = AttackConfig::nan_inject(0.3, 7);
    cfg.watchdog = WatchdogConfig { enabled: true, ..WatchdogConfig::default() };

    let metrics = experiment(5).run(&cfg);

    // The NaN upload poisons the plain mean; the watchdog must detect the
    // non-finite global, roll back and exclude the source — after which the
    // run completes every round with finite losses and a real model.
    assert_eq!(metrics.epochs(), epochs, "rollback must not end the run early");
    assert!(metrics.recovery.rollbacks >= 1, "NaN divergence must trigger a rollback");
    assert!(metrics.recovery.rounds_replayed >= 1);
    assert!(metrics.recovery.checkpoints_loaded >= 1);
    assert!(
        metrics.records.iter().all(|r| r.train_loss.is_finite()),
        "post-rollback rounds must stay finite"
    );
    assert!(metrics.final_accuracy() > 0.25, "excluding the attacker must let the run learn");

    // Recovery accounting is surfaced but stays out of the identity surface.
    let summary = metrics.recovery_summary().expect("recovery summary present");
    assert!(summary.contains("rollbacks"));
    assert!(metrics.recovery_csv().contains("rounds_replayed"));
    assert!(!metrics.to_csv().contains("rollbacks"), "to_csv stays recovery-free");
}

#[test]
fn injected_client_panics_are_contained_and_counted() {
    let mut cfg = RunConfig::new(Scheme::fedmigr(5), 6);
    cfg.agg_interval = 3;
    cfg.eval_interval = 6;
    cfg.batch_size = 16;
    cfg.seed = 5;
    // Poison two clients at specific rounds: their training threads panic
    // mid-epoch and must be contained by the runner, not propagate.
    cfg.fault.panics = vec![(0, 2), (2, 3)];

    let metrics = experiment(5).run(&cfg);

    assert_eq!(metrics.epochs(), 6, "panicking clients must not kill the run");
    assert_eq!(metrics.fault.client_panics, 2, "both injected panics counted");
    let summary = metrics.fault_summary().expect("fault summary present");
    assert!(summary.contains("panics"), "summary mentions panics: {summary}");
}
