//! End-to-end contract for the round-timeline observability layer:
//! recording a timeline (`--timeline-out`) must not perturb a seeded run
//! by a single byte — CSV and flight recording alike, on both transports —
//! and the artifacts it produces (versioned JSONL, Chrome trace JSON, the
//! `fedmigr_netview` report) must all be well-formed and agree with the
//! run they observed.
//!
//! Everything lives in ONE test function: the telemetry engine is
//! process-global, so concurrent experiment runs in this binary would
//! interleave their counters.

use fedmigr::core::{DiagConfig, Experiment, RunConfig, Scheme};
use fedmigr::data::{partition_shards, SyntheticConfig, SyntheticDataset};
use fedmigr::diag::netview;
use fedmigr::diag::{chrome_trace, TimelineRecording, TIMELINE_VERSION};
use fedmigr::net::{ClientCompute, DeviceTier, Topology, TopologyConfig, TransportConfig};
use fedmigr::nn::zoo::{self, NetScale};
use fedmigr_telemetry::trace::JsonValue;

fn experiment(seed: u64) -> Experiment {
    let data = SyntheticDataset::generate(&SyntheticConfig {
        num_classes: 4,
        train_per_class: 16,
        test_per_class: 8,
        channels: 1,
        hw: 8,
        noise_std: 0.8,
        class_sep: 1.0,
        atom_bank: 6,
        atoms_per_class: 2,
        private_frac: 0.5,
        seed,
    });
    let parts = partition_shards(&data.train, 4, 1, seed);
    Experiment::new(
        data.train,
        data.test,
        parts,
        Topology::new(&TopologyConfig::default_edge(vec![2, 2], seed)),
        ClientCompute::homogeneous(4, DeviceTier::Tx2),
        zoo::mini_resnet(1, 8, 4, 1, NetScale::Small, seed),
    )
}

fn tmp(tag: &str) -> String {
    std::env::temp_dir()
        .join(format!("fedmigr-timeline-e2e-{tag}-{}.jsonl", std::process::id()))
        .to_string_lossy()
        .into_owned()
}

/// Walks a Chrome trace's `traceEvents`, checking every `B` has a
/// matching same-name `E` on its `(pid, tid)` lane in LIFO order.
fn assert_well_nested(trace: &str) {
    let v = JsonValue::parse(trace).expect("chrome trace parses as JSON");
    let events = v
        .as_object()
        .and_then(|o| o.get("traceEvents"))
        .and_then(|e| match e {
            JsonValue::Array(items) => Some(items),
            _ => None,
        })
        .expect("trace has a traceEvents array");
    assert!(!events.is_empty(), "chrome trace is empty");
    let mut stacks: std::collections::BTreeMap<(String, String), Vec<String>> =
        std::collections::BTreeMap::new();
    for ev in events {
        let obj = ev.as_object().expect("event is an object");
        let field = |k: &str| obj.get(k).map(|v| format!("{v:?}")).unwrap_or_default();
        let name = obj.get("name").and_then(|n| n.as_str()).unwrap_or_default().to_string();
        match obj.get("ph").and_then(|p| p.as_str()) {
            Some("B") => stacks.entry((field("pid"), field("tid"))).or_default().push(name),
            Some("E") => {
                let open = stacks
                    .entry((field("pid"), field("tid")))
                    .or_default()
                    .pop()
                    .unwrap_or_else(|| panic!("E {name:?} with no open B on its lane"));
                assert_eq!(open, name, "E must close the innermost open B");
            }
            Some("i") => {}
            other => panic!("unexpected phase {other:?}"),
        }
    }
    for ((pid, tid), stack) in &stacks {
        assert!(stack.is_empty(), "unclosed B events on pid {pid} tid {tid}: {stack:?}");
    }
}

#[test]
fn timeline_observes_without_perturbing() {
    for (tag, transport) in
        [("lockstep", TransportConfig::Lockstep), ("flow", TransportConfig::flow(5))]
    {
        let mut cfg = RunConfig::new(Scheme::fedmigr(9), 10);
        cfg.agg_interval = 4;
        cfg.batch_size = 16;
        cfg.eval_interval = 5;
        cfg.transport = transport;

        // Baseline: flight recorder on, timeline off.
        let flight_off = tmp(&format!("{tag}-flight-off"));
        cfg.diag = DiagConfig {
            enabled: true,
            flight_out: Some(flight_off.clone()),
            ..DiagConfig::default()
        };
        let off = experiment(3).run(&cfg);

        // Same seed with the timeline recorder attached as well.
        let flight_on = tmp(&format!("{tag}-flight-on"));
        let timeline = tmp(&format!("{tag}-timeline"));
        let mut cfg_on = cfg.clone();
        cfg_on.diag = DiagConfig {
            enabled: true,
            flight_out: Some(flight_on.clone()),
            timeline_out: Some(timeline.clone()),
        };
        let on = experiment(3).run(&cfg_on);

        // 1. Byte-identity on BOTH exported artifacts.
        assert_eq!(
            off.to_csv(),
            on.to_csv(),
            "[{tag}] timeline recording must not perturb the CSV"
        );
        let flight_a = std::fs::read(&flight_off).expect("baseline flight exists");
        let flight_b = std::fs::read(&flight_on).expect("timeline-run flight exists");
        assert_eq!(flight_a, flight_b, "[{tag}] flight recordings must be byte-identical");

        // 2. The timeline parses, is versioned, and covers every epoch.
        let raw = std::fs::read_to_string(&timeline).expect("timeline written");
        let rec = TimelineRecording::parse(&raw).expect("timeline parses");
        assert_eq!(rec.header.version, TIMELINE_VERSION);
        assert_eq!(rec.header.transport, tag);
        assert_eq!(rec.header.clients, 4);
        assert!(rec.finished, "[{tag}] finish marker present");
        // Round 0 is the seed broadcast; then one settled round per epoch.
        assert_eq!(rec.settled_rounds().len(), on.epochs() + 1);

        // 3. Timeline invariants: start stamps never run backwards and
        //    every interval is closed (same checks `telemetry_validate
        //    --timeline` applies in CI).
        for round in &rec.rounds {
            assert!(round.t1 >= round.t0, "[{tag}] round not closed");
            for iv in &round.intervals {
                assert!(iv.t1 >= iv.t0, "[{tag}] interval not closed");
                assert!(iv.t0 >= round.t0 - 1e-9, "[{tag}] interval starts before round");
            }
            let links: std::collections::BTreeSet<&str> =
                round.links.iter().map(|l| l.id.as_str()).collect();
            for f in &round.flows {
                assert!(
                    links.contains(f.link.as_str()),
                    "[{tag}] flow event references undeclared link {:?}",
                    f.link
                );
            }
        }

        // 4. The Chrome conversion is valid JSON with well-nested B/E.
        assert_well_nested(&chrome_trace(&rec));

        // 5. netview digests the recording into a consistent report.
        let report = netview::analyze(&rec);
        assert_eq!(report.rounds, rec.settled_rounds().len());
        assert!(report.makespan_s > 0.0);
        let json = netview::render_json(&report);
        let parsed = JsonValue::parse(&json).expect("netview JSON parses");
        assert!(netview::diff_json(&parsed, &parsed, 1e-9).is_empty(), "report self-diffs clean");

        // The flow transport must actually produce flow events; lockstep
        // reduces to coarse intervals only.
        let flow_events: usize = rec.rounds.iter().map(|r| r.flows.len()).sum();
        if tag == "flow" {
            assert!(flow_events > 0, "flow transport records flow events");
        } else {
            assert_eq!(flow_events, 0, "lockstep records no flow events");
        }

        for p in [&flight_off, &flight_on, &timeline] {
            let _ = std::fs::remove_file(p);
        }
    }
}
