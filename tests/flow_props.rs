//! Property-based tests of the event-driven flow transport: exact byte
//! conservation across retransmissions, seeded determinism, freedom from
//! starvation under saturation, and — end to end — byte-identity of the
//! lockstep transport with the seeded baselines plus liveness of flow runs
//! under network stress.

use fedmigr::core::{Experiment, RunConfig, Scheme, StalenessPolicy};
use fedmigr::data::{partition_shards, SyntheticConfig, SyntheticDataset};
use fedmigr::net::{
    ClientCompute, DeviceTier, FlowConfig, FlowSim, QueueDiscipline, Topology, TopologyConfig,
    TransportConfig,
};
use fedmigr::nn::zoo::{self, NetScale};
use proptest::prelude::*;

/// A single shared link with `n` competing flows of assorted sizes, plus
/// optional loss — the canonical contention scenario.
fn contended_sim(
    cfg: FlowConfig,
    capacity: f64,
    loss: f64,
    sizes: &[u64],
) -> (FlowSim, Vec<fedmigr::net::FlowOutcome>) {
    let mut sim = FlowSim::new(cfg);
    let link = sim.add_link(capacity, loss, 0.005, None);
    for &bytes in sizes {
        sim.add_flow(&[link], bytes);
    }
    sim.run();
    let outcomes = sim.outcomes();
    (sim, outcomes)
}

proptest! {
    /// Wire bytes decompose exactly into delivered + retransmitted bytes
    /// for every flow, lossy or not, completed or failed; a completed flow
    /// delivered its whole payload.
    #[test]
    fn bytes_are_conserved_across_retransmits(
        seed in 0u64..500,
        loss in 0.0f64..0.45,
        sizes in prop::collection::vec(1u64..2_000_000, 1..8),
    ) {
        let (_, outcomes) =
            contended_sim(FlowConfig::standard(seed), 2_000_000.0, loss, &sizes);
        for (o, &bytes) in outcomes.iter().zip(&sizes) {
            prop_assert_eq!(o.payload_bytes, bytes);
            prop_assert_eq!(o.wire_bytes, o.delivered_bytes + o.retransmit_bytes);
            if o.completed {
                prop_assert_eq!(o.delivered_bytes, bytes);
            } else {
                prop_assert!(o.delivered_bytes < bytes);
            }
            prop_assert!(o.finish.is_finite() && o.finish >= 0.0);
        }
    }

    /// Identical `(config, links, flows)` yield bit-identical outcomes: the
    /// loss schedule is a pure hash and the event loop holds no ambient
    /// state (no clocks, no global RNG).
    #[test]
    fn flow_simulations_are_deterministic(
        seed in 0u64..500,
        loss in 0.0f64..0.4,
        fifo in any::<bool>(),
        sizes in prop::collection::vec(1u64..1_000_000, 1..6),
    ) {
        let mut cfg = FlowConfig::standard(seed);
        if fifo {
            cfg.discipline = QueueDiscipline::Fifo;
        }
        let (sa, a) = contended_sim(cfg, 1_500_000.0, loss, &sizes);
        let (sb, b) = contended_sim(cfg, 1_500_000.0, loss, &sizes);
        prop_assert_eq!(sa.makespan().to_bits(), sb.makespan().to_bits());
        for (oa, ob) in a.iter().zip(&b) {
            prop_assert_eq!(oa.completed, ob.completed);
            prop_assert_eq!(oa.finish.to_bits(), ob.finish.to_bits());
            prop_assert_eq!(oa.wire_bytes, ob.wire_bytes);
            prop_assert_eq!(oa.retransmits, ob.retransmits);
            prop_assert_eq!(oa.timeouts, ob.timeouts);
            prop_assert_eq!(oa.queue_delay.to_bits(), ob.queue_delay.to_bits());
        }
    }

    /// No starvation under saturation: when many flows pile onto one live
    /// (loss-free) link, every flow still completes under both disciplines —
    /// fair share drains them together, FIFO drains them in order — and no
    /// flow strikes out on timeouts merely because the link is busy.
    #[test]
    fn saturation_never_starves_a_flow(
        seed in 0u64..300,
        fifo in any::<bool>(),
        sizes in prop::collection::vec(50_000u64..1_500_000, 4..12),
    ) {
        let mut cfg = FlowConfig::standard(seed);
        if fifo {
            cfg.discipline = QueueDiscipline::Fifo;
        }
        // Deliberately undersized link: total demand takes many seconds.
        let (_, outcomes) = contended_sim(cfg, 400_000.0, 0.0, &sizes);
        let total: u64 = sizes.iter().sum();
        let lower_bound = total as f64 / 400_000.0;
        for o in &outcomes {
            prop_assert!(o.completed, "flow starved: {o:?}");
            prop_assert_eq!(o.timeouts, 0);
            // Busy-link waiting is accounted as queue delay, not failure.
            prop_assert!(o.finish <= 4.0 * lower_bound + 60.0);
        }
    }
}

fn tiny_experiment(seed: u64) -> Experiment {
    let data = SyntheticDataset::generate(&SyntheticConfig {
        num_classes: 4,
        train_per_class: 16,
        test_per_class: 8,
        channels: 1,
        hw: 8,
        noise_std: 0.8,
        class_sep: 1.0,
        atom_bank: 6,
        atoms_per_class: 2,
        private_frac: 0.5,
        seed,
    });
    let parts = partition_shards(&data.train, 4, 1, seed);
    Experiment::new(
        data.train,
        data.test,
        parts,
        Topology::new(&TopologyConfig::default_edge(vec![2, 2], seed)),
        ClientCompute::homogeneous(4, DeviceTier::Tx2),
        zoo::mini_resnet(1, 8, 4, 1, NetScale::Small, seed),
    )
}

/// The lockstep transport is byte-identical to the pre-flow baseline: an
/// explicit `TransportConfig::Lockstep` (with a non-default staleness
/// policy, which lockstep must ignore) reproduces the default run bit for
/// bit — loss, accuracy, traffic and simulated time.
#[test]
fn lockstep_transport_is_byte_identical_to_seeded_baseline() {
    for seed in [3u64, 11] {
        let mut base = RunConfig::new(Scheme::fedmigr(9), 8);
        base.agg_interval = 4;
        base.batch_size = 16;
        let mut lockstep = base.clone();
        lockstep.transport = TransportConfig::Lockstep;
        lockstep.stale = StalenessPolicy { discount: 0.123, max_age: 9 };
        let a = tiny_experiment(seed).run(&base);
        let b = tiny_experiment(seed).run(&lockstep);
        assert_eq!(a.records.len(), b.records.len());
        for (ra, rb) in a.records.iter().zip(&b.records) {
            assert_eq!(ra.train_loss, rb.train_loss);
            assert_eq!(ra.test_accuracy, rb.test_accuracy);
            assert_eq!(ra.traffic, rb.traffic);
            assert_eq!(ra.sim_time, rb.sim_time);
            assert_eq!(ra.retransmits, 0);
            assert_eq!(ra.late_uploads, 0);
        }
        assert!(!b.transport_stats.any());
        assert_eq!(b.transport, "lockstep");
    }
}

/// Flow-transport runs under composed network stress and churn never stall:
/// every epoch completes, stats are populated, and the run stays seeded-
/// deterministic.
#[test]
fn stressed_flow_runs_complete_every_round() {
    for (seed, stress) in [(5u64, 0.3), (8, 0.5)] {
        let mut cfg = RunConfig::new(Scheme::fedmigr(9), 8);
        cfg.agg_interval = 4;
        cfg.batch_size = 16;
        cfg.transport = TransportConfig::flow(seed);
        cfg.fault.seed = 17;
        cfg.fault = cfg.fault.with_network_stress(stress);
        let a = tiny_experiment(seed).run(&cfg);
        assert_eq!(a.epochs(), 8, "stress {stress} stalled the run");
        assert!(a.transport_stats.any());
        assert!(a.transport_stats.flows > 0);
        let b = tiny_experiment(seed).run(&cfg);
        assert_eq!(a.transport_stats, b.transport_stats);
        assert_eq!(a.final_accuracy(), b.final_accuracy());
        assert_eq!(a.sim_time(), b.sim_time());
    }
}
