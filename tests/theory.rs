//! Property-based tests of the paper's theoretical claims and the core
//! numeric invariants they rest on.

use fedmigr::data::distribution::{l1_distance, virtual_distribution};
use fedmigr::drl::qp::project_simplex;
use fedmigr::nn::params::weighted_average;
use proptest::prelude::*;

fn counts() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(0usize..50, 2..8)
}

proptest! {
    /// Eq. (15): for any local class counts, M >= 1 migrations strictly
    /// shrink (or preserve, when already aligned) the L1 distance between
    /// the virtual distribution and the population distribution.
    #[test]
    fn virtual_distribution_contracts(local in counts(), m in 1usize..20, k in 2usize..30) {
        // Population: make every class present so q is well defined, and
        // ensure the local set is a subset of the population.
        let pop: Vec<usize> = local.iter().map(|&c| c + 10).collect();
        prop_assume!(local.iter().sum::<usize>() > 0);
        let n: f64 = pop.iter().sum::<usize>() as f64;
        let q: Vec<f64> = pop.iter().map(|&c| c as f64 / n).collect();
        let n_k: f64 = local.iter().sum::<usize>() as f64;
        let q_k: Vec<f64> = local.iter().map(|&c| c as f64 / n_k).collect();

        let q_virtual = virtual_distribution(&local, &pop, m, k);
        let before = l1_distance(&q_k, &q);
        let after = l1_distance(&q_virtual, &q);
        prop_assert!(after <= before + 1e-12, "{after} > {before}");
        // Strict when the client is actually skewed.
        if before > 1e-9 {
            prop_assert!(after < before);
        }
    }

    /// The virtual distribution is always a probability distribution.
    #[test]
    fn virtual_distribution_is_normalized(local in counts(), m in 0usize..20, k in 1usize..30) {
        let pop: Vec<usize> = local.iter().map(|&c| c + 1).collect();
        prop_assume!(local.iter().sum::<usize>() > 0);
        let q = virtual_distribution(&local, &pop, m, k);
        let sum: f64 = q.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        prop_assert!(q.iter().all(|&x| x >= 0.0));
    }

    /// FedAvg aggregation (Eq. 7) is a convex combination: every coordinate
    /// of the average lies within the per-coordinate min/max of the inputs.
    #[test]
    fn aggregation_is_a_convex_combination(
        a in prop::collection::vec(-10.0f32..10.0, 4),
        b in prop::collection::vec(-10.0f32..10.0, 4),
        wa in 1.0f64..100.0,
        wb in 1.0f64..100.0,
    ) {
        let avg = weighted_average(&[(&a, wa), (&b, wb)]);
        for i in 0..4 {
            let lo = a[i].min(b[i]) - 1e-4;
            let hi = a[i].max(b[i]) + 1e-4;
            prop_assert!(avg[i] >= lo && avg[i] <= hi);
        }
    }

    /// Aggregating identical models is the identity regardless of weights.
    #[test]
    fn aggregation_identity(
        a in prop::collection::vec(-10.0f32..10.0, 8),
        weights in prop::collection::vec(1.0f64..100.0, 3),
    ) {
        let entries: Vec<(&[f32], f64)> = weights.iter().map(|&w| (a.as_slice(), w)).collect();
        let avg = weighted_average(&entries);
        for (x, y) in avg.iter().zip(&a) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// Simplex projection always lands on the simplex and is idempotent.
    #[test]
    fn simplex_projection_properties(v in prop::collection::vec(-100.0f64..100.0, 1..12)) {
        let mut p = v.clone();
        project_simplex(&mut p);
        let sum: f64 = p.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-6, "sum {sum}");
        prop_assert!(p.iter().all(|&x| x >= 0.0));
        let mut q = p.clone();
        project_simplex(&mut q);
        for (x, y) in p.iter().zip(&q) {
            prop_assert!((x - y).abs() < 1e-9);
        }
        // Order preservation: larger inputs never get smaller outputs than
        // smaller inputs.
        for i in 0..v.len() {
            for j in 0..v.len() {
                if v[i] > v[j] {
                    prop_assert!(p[i] >= p[j] - 1e-9);
                }
            }
        }
    }

    /// L1 distance between distributions is a metric bounded by 2.
    #[test]
    fn l1_distance_is_bounded_metric(
        a in prop::collection::vec(0.0f64..1.0, 5),
        b in prop::collection::vec(0.0f64..1.0, 5),
    ) {
        let norm = |v: &[f64]| -> Vec<f64> {
            let s: f64 = v.iter().sum::<f64>().max(1e-9);
            v.iter().map(|x| x / s).collect()
        };
        let (a, b) = (norm(&a), norm(&b));
        let d = l1_distance(&a, &b);
        prop_assert!((0.0..=2.0 + 1e-9).contains(&d));
        prop_assert!((l1_distance(&a, &a)).abs() < 1e-12);
        prop_assert!((d - l1_distance(&b, &a)).abs() < 1e-12);
    }
}
