//! End-to-end telemetry contract: observation never perturbs a run, the
//! JSONL trace is well-formed, and spans account for the round wall-clock.
//!
//! Everything that attaches a writer to the process-global engine lives in
//! ONE test function: the engine (and its span-depth counter) is shared by
//! every test thread in this binary, so concurrent experiment runs would
//! interleave their events.

use fedmigr::core::{Experiment, RunConfig, Scheme};
use fedmigr::data::{partition_shards, SyntheticConfig, SyntheticDataset};
use fedmigr::net::{ClientCompute, DeviceTier, Topology, TopologyConfig};
use fedmigr::nn::zoo::{self, NetScale};
use fedmigr_telemetry::TraceEvent;

use std::io::Write;
use std::sync::{Arc, Mutex};

/// Counting allocator wired exactly as the CLI wires it: forwards to the
/// system allocator, and only attributes while `--profile-alloc` profiling
/// is enabled — so it also proves the disabled path costs nothing visible.
#[global_allocator]
static ALLOC: fedmigr_telemetry::profiler::CountingAlloc =
    fedmigr_telemetry::profiler::CountingAlloc;

fn experiment(seed: u64) -> Experiment {
    let data = SyntheticDataset::generate(&SyntheticConfig {
        num_classes: 4,
        train_per_class: 16,
        test_per_class: 8,
        channels: 1,
        hw: 8,
        noise_std: 0.8,
        class_sep: 1.0,
        atom_bank: 6,
        atoms_per_class: 2,
        private_frac: 0.5,
        seed,
    });
    let parts = partition_shards(&data.train, 4, 1, seed);
    Experiment::new(
        data.train,
        data.test,
        parts,
        Topology::new(&TopologyConfig::default_edge(vec![2, 2], seed)),
        ClientCompute::homogeneous(4, DeviceTier::Tx2),
        zoo::mini_resnet(1, 8, 4, 1, NetScale::Small, seed),
    )
}

/// A shared in-memory JSONL trace sink.
#[derive(Clone, Default)]
struct Buf(Arc<Mutex<Vec<u8>>>);

impl Write for Buf {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(data);
        Ok(data.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn telemetry_observes_without_perturbing() {
    let mut cfg = RunConfig::new(Scheme::fedmigr(9), 10);
    cfg.agg_interval = 4;
    cfg.batch_size = 16;

    // Baseline: telemetry at its defaults, no trace writer attached.
    let off = experiment(3).run(&cfg);

    // Same seed with a trace stream attached and everything recorded.
    let buf = Buf::default();
    fedmigr_telemetry::global().set_trace_writer(Box::new(buf.clone()));
    let on = experiment(3).run(&cfg);
    fedmigr_telemetry::close_trace();

    // 1. Determinism: the exported run is byte-identical either way.
    assert_eq!(off.to_csv(), on.to_csv(), "telemetry must not perturb a seeded run");
    assert_eq!(off.link_migrations, on.link_migrations);

    // 2. The virtual phase breakdown accounts for all simulated time.
    let total = on.phase().total();
    assert!(
        (total - on.sim_time()).abs() <= 1e-9 * on.sim_time().max(1.0),
        "phase total {total} != sim time {}",
        on.sim_time()
    );

    // 3. Every trace line parses strictly.
    let raw = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
    let events: Vec<TraceEvent> = raw
        .lines()
        .map(|l| TraceEvent::parse(l).unwrap_or_else(|e| panic!("bad JSONL line {l:?}: {e}")))
        .collect();
    assert!(!events.is_empty(), "trace stream is empty");

    // 4. Span coverage: direct children of the per-epoch `round` spans tile
    //    (almost) the entire round wall-clock.
    let spans: Vec<(&String, f64, usize)> = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Span { name, dur, depth, .. } => Some((name, *dur, *depth)),
            TraceEvent::Log { .. } => None,
        })
        .collect();
    let round_depth = spans
        .iter()
        .filter(|(name, _, _)| *name == "round")
        .map(|(_, _, d)| *d)
        .min()
        .expect("runner emits round spans");
    let round_total: f64 = spans
        .iter()
        .filter(|(name, _, d)| *name == "round" && *d == round_depth)
        .map(|(_, dur, _)| dur)
        .sum();
    let child_total: f64 = spans
        .iter()
        .filter(|(name, _, d)| *name != "round" && *d == round_depth + 1)
        .map(|(_, dur, _)| dur)
        .sum();
    assert_eq!(
        spans.iter().filter(|(name, _, _)| *name == "round").count(),
        10,
        "one round span per epoch"
    );
    assert!(round_total > 0.0);
    let coverage = child_total / round_total;
    assert!(coverage >= 0.95, "span coverage {coverage:.3} below 95% of round wall-clock");
    assert!(coverage <= 1.05, "children exceed their rounds: coverage {coverage:.3}");

    // 5. The metrics dump carries the core families fed by the run.
    let dump = fedmigr_telemetry::render_metrics();
    for family in ["fedmigr_phase_seconds", "fedmigr_net_bytes_total", "fedmigr_codec_bytes_total"]
    {
        assert!(dump.contains(&format!("# TYPE {family} ")), "metrics dump missing {family}");
    }

    // 6. Profiler + allocation counting + kernel accounting are
    //    observation-only: a third identical run with every observability
    //    layer enabled stays byte-identical to the baseline, while the
    //    collapsed-stack, allocation and kernel-counter outputs all fill.
    fedmigr::tensor::kcount::reset();
    fedmigr::tensor::kcount::set_enabled(true);
    fedmigr_telemetry::profiler::reset();
    fedmigr_telemetry::profiler::set_enabled(true);
    fedmigr_telemetry::profiler::set_alloc_enabled(true);
    let profiled = experiment(3).run(&cfg);
    fedmigr_telemetry::profiler::set_enabled(false);
    fedmigr_telemetry::profiler::set_alloc_enabled(false);
    fedmigr::tensor::kcount::set_enabled(false);

    assert_eq!(off.to_csv(), profiled.to_csv(), "profiling must not perturb a seeded run");
    assert_eq!(off.link_migrations, profiled.link_migrations);

    let collapsed = fedmigr_telemetry::profiler::collapsed_report();
    assert!(
        collapsed.lines().any(|l| l.starts_with("round;local_train ")),
        "phase frames must nest under rounds:\n{collapsed}"
    );
    let alloc = fedmigr_telemetry::profiler::alloc_report();
    let train_allocs = alloc
        .lines()
        .find(|l| l.starts_with("round;local_train "))
        .expect("alloc report has the training scope");
    let allocs: u64 = train_allocs.split_whitespace().nth(2).unwrap().parse().unwrap();
    assert!(allocs > 0, "the counting allocator saw training allocations: {train_allocs}");

    let dump = fedmigr_telemetry::render_metrics();
    for family in [
        "fedmigr_kernel_flops_total",
        "fedmigr_kernel_bytes_total",
        "fedmigr_kernel_calls_total",
        "fedmigr_kernel_nanos_total",
    ] {
        assert!(dump.contains(&format!("# TYPE {family} ")), "metrics dump missing {family}");
    }
    // Kernel time attributes a meaningful share of the training phase. The
    // bound is loose (the strict 90-110% CPU-band gate runs on the release
    // fig7 config in CI) because this is a debug build — unoptimized
    // non-kernel code (batch assembly, iterators, bounds checks) dominates —
    // and `train_all` chunks to `available_parallelism`, so summed kernel
    // wall is no longer inflated by per-client thread oversubscription.
    let cov = fedmigr::core::kernels::phase_coverage("local_train")
        .expect("local_train kernel coverage is measurable");
    assert!(cov >= 0.1, "kernel coverage of local_train {cov:.3} below 10%");
    // CPU-based attribution must also be measurable. The upper bound is very
    // loose: /proc/self/stat ticks at USER_HZ (10 ms), so on a sub-second
    // smoke run per-phase CPU quantizes coarsely and the ratio is noisy in
    // both directions. The strict band is gated on the long release fig7
    // config in CI, where quantization error is negligible.
    let cpu_cov = fedmigr::core::kernels::phase_cpu_coverage("local_train")
        .expect("local_train CPU coverage is measurable");
    assert!(
        cpu_cov > 0.05 && cpu_cov < 10.0,
        "CPU coverage of local_train {cpu_cov:.3} outside (0.05, 10)"
    );
}
