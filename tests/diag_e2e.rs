//! End-to-end contract for the learning-dynamics diagnostics: turning them
//! on (gauges + flight recorder) must not perturb a seeded run by a single
//! byte, and the recorded artifact must round-trip through the parser, the
//! report renderer and the regression differ.
//!
//! Everything lives in ONE test function: the telemetry engine (gauges,
//! span-depth counter) is process-global, so concurrent experiment runs in
//! this binary would interleave their measurements.

use fedmigr::core::{DiagConfig, Experiment, RunConfig, Scheme};
use fedmigr::data::{partition_shards, SyntheticConfig, SyntheticDataset};
use fedmigr::net::{ClientCompute, DeviceTier, Topology, TopologyConfig};
use fedmigr::nn::zoo::{self, NetScale};
use fedmigr_diag::{diff_recordings, render_report, FlightRecording, Tolerances, FLIGHT_VERSION};

fn experiment(seed: u64) -> Experiment {
    let data = SyntheticDataset::generate(&SyntheticConfig {
        num_classes: 4,
        train_per_class: 16,
        test_per_class: 8,
        channels: 1,
        hw: 8,
        noise_std: 0.8,
        class_sep: 1.0,
        atom_bank: 6,
        atoms_per_class: 2,
        private_frac: 0.5,
        seed,
    });
    let parts = partition_shards(&data.train, 4, 1, seed);
    Experiment::new(
        data.train,
        data.test,
        parts,
        Topology::new(&TopologyConfig::default_edge(vec![2, 2], seed)),
        ClientCompute::homogeneous(4, DeviceTier::Tx2),
        zoo::mini_resnet(1, 8, 4, 1, NetScale::Small, seed),
    )
}

#[test]
fn diagnostics_observe_without_perturbing() {
    let mut cfg = RunConfig::new(Scheme::fedmigr(9), 10);
    cfg.agg_interval = 4;
    cfg.batch_size = 16;
    cfg.eval_interval = 5;

    // Baseline: diagnostics fully off.
    let off = experiment(3).run(&cfg);

    // Same seed with gauges AND the flight recorder active.
    let flight_path =
        std::env::temp_dir().join(format!("fedmigr-diag-e2e-{}.jsonl", std::process::id()));
    let mut cfg_on = cfg.clone();
    cfg_on.diag = DiagConfig {
        enabled: true,
        flight_out: Some(flight_path.to_string_lossy().into_owned()),
        ..DiagConfig::default()
    };
    let on = experiment(3).run(&cfg_on);

    // 1. Byte-identity: the exported run must not change at all.
    assert_eq!(off.to_csv(), on.to_csv(), "diagnostics must not perturb a seeded run");
    assert_eq!(off.link_migrations, on.link_migrations);
    assert_eq!(off.migrations_local, on.migrations_local);
    assert_eq!(off.migrations_global, on.migrations_global);

    // 2. The recording parses and matches the run it observed.
    let rec =
        FlightRecording::from_file(flight_path.to_str().unwrap()).expect("flight recording parses");
    assert_eq!(rec.header.version, FLIGHT_VERSION);
    assert_eq!(rec.header.clients, 4);
    assert_eq!(rec.header.seed, cfg.seed);
    assert_eq!(rec.rounds.len(), on.epochs(), "one round record per epoch");
    let summary = rec.summary.as_ref().expect("recorder writes a summary");
    assert_eq!(summary.epochs_run, on.epochs());
    assert_eq!(summary.final_accuracy, on.final_accuracy());
    assert_eq!(summary.best_accuracy, on.best_accuracy());
    assert_eq!(summary.total_bytes, on.traffic().total());
    assert_eq!(summary.migrations_local, on.migrations_local);
    assert_eq!(summary.migrations_global, on.migrations_global);
    for (round, epoch_rec) in rec.rounds.iter().zip(&on.records) {
        assert_eq!(round.train_loss, f64::from(epoch_rec.train_loss));
        assert_eq!(round.test_accuracy, epoch_rec.test_accuracy);
        assert_eq!(round.sim_time, epoch_rec.sim_time);
    }

    // 3. Diagnostics carry signal: EMDs are valid, FedMigr rounds record a
    //    DRL snapshot, migratory epochs carry edges.
    for round in &rec.rounds {
        assert!(round.emd.mean.is_finite() && (0.0..=1.0).contains(&round.emd.mean));
        assert!(round.emd.max >= round.emd.mean);
        assert_eq!(round.emd.per_client.len(), 4);
        assert!((0.0..=1.0).contains(&round.train_emd.mean));
        assert!(round.drift.is_some(), "drift snapshot recorded each round");
    }
    assert!(
        rec.mean_train_emd_over_run() > 0.0,
        "one-class shards keep the training-history mixture away from the population"
    );
    assert!(rec.rounds.iter().any(|r| r.drl.is_some()), "FedMigr runs record DDPG introspection");
    assert!(
        rec.rounds.iter().any(|r| !r.migrations.is_empty()),
        "migratory epochs record their edge lists"
    );
    let migrated: usize =
        rec.rounds.iter().flat_map(|r| &r.migrations).filter(|e| e.outcome.delivered()).count();
    assert_eq!(
        migrated,
        on.migrations_local + on.migrations_global,
        "edge list agrees with the run's migration counters"
    );

    // 4. The report renders every section for this recording.
    let report = render_report(&rec);
    for section in
        ["convergence", "EMD trajectory", "client drift", "DDPG introspection", "migration graph"]
    {
        assert!(report.contains(section), "report missing section {section:?}:\n{report}");
    }

    // 5. A recording diffed against itself is regression-free.
    let regressions =
        diff_recordings(&rec, &rec, &Tolerances::default()).expect("self-diff succeeds");
    assert!(regressions.is_empty(), "self-diff found regressions: {regressions:?}");

    // 6. Gauges were exported through the telemetry engine.
    let dump = fedmigr_telemetry::render_metrics();
    for gauge in ["fedmigr_diag_emd_mean", "fedmigr_diag_drift_mean_dist"] {
        assert!(dump.contains(gauge), "metrics dump missing {gauge}");
    }

    let _ = std::fs::remove_file(&flight_path);
}
