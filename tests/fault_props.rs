//! Property-based tests of the fault-injection subsystem: schedule
//! determinism, liveness-masked migration planning, and retry/backoff
//! accounting.

use fedmigr::core::MigrationPlan;
use fedmigr::net::{FaultConfig, FaultModel, RetryPolicy, SimClock, Topology, TopologyConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    /// An identical `(seed, config)` pair yields a bit-identical fault
    /// schedule: every query is a pure function of its arguments.
    #[test]
    fn schedules_are_bit_identical(
        dropout in 0.0f64..0.6,
        seed in 0u64..1000,
        k in 2usize..12,
    ) {
        let a = FaultModel::new(FaultConfig::edge_churn(dropout, seed), k);
        let b = FaultModel::new(FaultConfig::edge_churn(dropout, seed), k);
        for epoch in 0..40 {
            for i in 0..k {
                prop_assert_eq!(a.is_alive(i, epoch), b.is_alive(i, epoch));
                prop_assert_eq!(a.slowdown(i, epoch).to_bits(), b.slowdown(i, epoch).to_bits());
                prop_assert_eq!(a.c2s_up(i, epoch), b.c2s_up(i, epoch));
                for j in 0..k {
                    prop_assert_eq!(a.link_up(i, j, epoch), b.link_up(i, j, epoch));
                    prop_assert_eq!(
                        a.link_quality(i, j, epoch).to_bits(),
                        b.link_quality(i, j, epoch).to_bits()
                    );
                }
            }
        }
    }

    /// Query order cannot matter: reading the schedule backwards produces
    /// the same values as reading it forwards (no hidden mutable state).
    #[test]
    fn schedule_is_order_independent(seed in 0u64..1000) {
        let f = FaultModel::new(FaultConfig::edge_churn(0.3, seed), 6);
        let forwards: Vec<bool> =
            (0..60).flat_map(|e| (0..6).map(move |i| (e, i))).map(|(e, i)| f.is_alive(i, e)).collect();
        let backwards: Vec<bool> = (0..60)
            .rev()
            .flat_map(|e| (0..6).rev().map(move |i| (e, i)))
            .map(|(e, i)| f.is_alive(i, e))
            .collect();
        let backwards_reordered: Vec<bool> =
            backwards.into_iter().rev().collect();
        prop_assert_eq!(forwards, backwards_reordered);
    }

    /// Every masked planner produces plans whose moves stay entirely inside
    /// the live set — dead clients neither send nor receive models.
    #[test]
    fn masked_plans_only_target_live_clients(
        mask in prop::collection::vec(any::<bool>(), 4..14),
        seed in 0u64..500,
    ) {
        let k = mask.len();
        let half = k / 2;
        let topo = Topology::new(&TopologyConfig::default_edge(vec![half, k - half], seed));
        let mut rng = StdRng::seed_from_u64(seed);
        let scores: Vec<Vec<f64>> = (0..k)
            .map(|i| (0..k).map(|j| ((i * 31 + j * 17) % 23) as f64).collect())
            .collect();
        let plans = [
            MigrationPlan::random_subset(k, &mask, &mut rng),
            MigrationPlan::within_lan_masked(&topo, &mask, &mut rng),
            MigrationPlan::cross_lan_masked(&topo, &mask, &mut rng),
            MigrationPlan::greedy_assignment_masked(&scores, &mask),
        ];
        for plan in &plans {
            for (i, j) in plan.moves() {
                prop_assert!(mask[i], "model of dead client {i} moved");
                prop_assert!(mask[j], "model delivered to dead client {j}");
            }
            for (i, &live) in mask.iter().enumerate() {
                if !live {
                    prop_assert_eq!(plan.dest(i), i);
                }
            }
        }
    }

    /// The total backoff a retry sequence charges to the clock is monotone
    /// non-decreasing in the number of retries, for any policy shape.
    #[test]
    fn backoff_time_is_monotone_in_retry_count(
        base in 0.01f64..2.0,
        factor in 1.0f64..3.0,
        retries in 0u32..10,
    ) {
        let policy = RetryPolicy {
            max_retries: 10,
            base_backoff: base,
            backoff_factor: factor,
            retry_success_prob: 0.5,
        };
        prop_assert!(policy.total_backoff(retries + 1) >= policy.total_backoff(retries));
        // And the same holds once charged into the simulation clock.
        let mut shorter = SimClock::new();
        let mut longer = SimClock::new();
        shorter.advance(policy.total_backoff(retries));
        longer.advance(policy.total_backoff(retries + 1));
        prop_assert!(longer.now() >= shorter.now());
    }
}

/// `FaultModel::none` must never flag a fault, whatever is asked of it.
#[test]
fn disabled_model_is_transparent_everywhere() {
    let f = FaultModel::none(8);
    for epoch in 0..100 {
        for i in 0..8 {
            assert!(f.is_alive(i, epoch));
            assert_eq!(f.slowdown(i, epoch), 1.0);
            assert!(f.c2s_up(i, epoch));
            for j in 0..8 {
                assert!(f.link_up(i, j, epoch));
                assert_eq!(f.link_quality(i, j, epoch), 1.0);
            }
        }
    }
}
