//! Reproducibility: identical seeds give bit-identical runs across the
//! whole stack (data generation, migration randomness, DRL agent).

use fedmigr::core::{Experiment, RunConfig, Scheme};
use fedmigr::data::{partition_shards, SyntheticConfig, SyntheticDataset};
use fedmigr::net::{ClientCompute, DeviceTier, Topology, TopologyConfig};
use fedmigr::nn::zoo::{self, NetScale};

fn experiment(seed: u64) -> Experiment {
    let data = SyntheticDataset::generate(&SyntheticConfig {
        num_classes: 4,
        train_per_class: 16,
        test_per_class: 8,
        channels: 1,
        hw: 8,
        noise_std: 0.8,
        class_sep: 1.0,
        atom_bank: 6,
        atoms_per_class: 2,
        private_frac: 0.5,
        seed,
    });
    let parts = partition_shards(&data.train, 4, 1, seed);
    Experiment::new(
        data.train,
        data.test,
        parts,
        Topology::new(&TopologyConfig::default_edge(vec![2, 2], seed)),
        ClientCompute::homogeneous(4, DeviceTier::Tx2),
        zoo::mini_resnet(1, 8, 4, 1, NetScale::Small, seed),
    )
}

#[test]
fn fedmigr_runs_are_bit_reproducible() {
    let mut cfg = RunConfig::new(Scheme::fedmigr(9), 10);
    cfg.agg_interval = 4;
    cfg.batch_size = 16;
    let a = experiment(3).run(&cfg);
    let b = experiment(3).run(&cfg);
    assert_eq!(a.records.len(), b.records.len());
    for (ra, rb) in a.records.iter().zip(&b.records) {
        assert_eq!(ra.train_loss, rb.train_loss);
        assert_eq!(ra.test_accuracy, rb.test_accuracy);
        assert_eq!(ra.traffic, rb.traffic);
        assert_eq!(ra.sim_time, rb.sim_time);
    }
    assert_eq!(a.link_migrations, b.link_migrations);
}

#[test]
fn different_seeds_change_the_run() {
    let mut cfg_a = RunConfig::new(Scheme::RandMigr, 8);
    cfg_a.agg_interval = 4;
    cfg_a.batch_size = 16;
    let mut cfg_b = cfg_a.clone();
    cfg_b.seed = cfg_a.seed + 1;
    let exp = experiment(3);
    let a = exp.run(&cfg_a);
    let b = exp.run(&cfg_b);
    assert_ne!(
        a.link_migrations, b.link_migrations,
        "different seeds should produce different migration patterns"
    );
}

#[test]
fn dataset_generation_is_stable_across_calls() {
    let exp1 = experiment(3);
    let exp2 = experiment(3);
    let mut cfg = RunConfig::new(Scheme::FedAvg, 4);
    cfg.batch_size = 16;
    assert_eq!(exp1.run(&cfg).final_accuracy(), exp2.run(&cfg).final_accuracy());
}
