//! Property-based tests of the migration-plan algebra and the parameter
//! wire format, across arbitrary sizes and seeds.

use fedmigr::core::MigrationPlan;
use fedmigr::nn::params::{decode_params, encode_params};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn is_permutation(plan: &MigrationPlan) -> bool {
    let k = plan.len();
    let mut seen = vec![false; k];
    for i in 0..k {
        let j = plan.dest(i);
        if j >= k || seen[j] {
            return false;
        }
        seen[j] = true;
    }
    true
}

proptest! {
    /// Random plans are permutations for every size and seed.
    #[test]
    fn random_plans_are_permutations(k in 1usize..24, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let plan = MigrationPlan::random(k, &mut rng);
        prop_assert!(is_permutation(&plan));
    }

    /// Subset plans never move an inactive client's model.
    #[test]
    fn subset_plans_fix_inactive_clients(
        mask in prop::collection::vec(any::<bool>(), 1..16),
        seed in 0u64..1000,
    ) {
        let k = mask.len();
        let mut rng = StdRng::seed_from_u64(seed);
        let plan = MigrationPlan::random_subset(k, &mask, &mut rng);
        prop_assert!(is_permutation(&plan));
        for (i, &active) in mask.iter().enumerate() {
            if !active {
                prop_assert_eq!(plan.dest(i), i);
            }
        }
    }

    /// Greedy assignment is a permutation and, for non-negative scores,
    /// achieves at least half the optimal assignment value (the classic
    /// greedy-matching guarantee; exact optimality does NOT hold — the
    /// largest cell can force a poor complement).
    #[test]
    fn greedy_assignment_is_half_optimal_on_2x2(
        flat in prop::collection::vec(0.0f64..10.0, 4..=4),
    ) {
        let scores = vec![
            vec![flat[0], flat[1]],
            vec![flat[2], flat[3]],
        ];
        let plan = MigrationPlan::greedy_assignment(&scores);
        prop_assert!(is_permutation(&plan));
        let total: f64 = (0..2).map(|i| scores[i][plan.dest(i)]).sum();
        let identity: f64 = scores[0][0] + scores[1][1];
        let swap: f64 = scores[0][1] + scores[1][0];
        let optimum = identity.max(swap);
        prop_assert!(2.0 * total >= optimum - 1e-9, "greedy {total} vs optimum {optimum}");
    }

    /// Applying a plan permutes without loss: the multiset of models is
    /// preserved.
    #[test]
    fn apply_preserves_models(k in 1usize..12, seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let plan = MigrationPlan::random(k, &mut rng);
        let models: Vec<usize> = (0..k).collect();
        let mut routed = plan.apply(&models);
        routed.sort_unstable();
        prop_assert_eq!(routed, models);
    }

    /// The wire format round-trips arbitrary finite parameter vectors.
    #[test]
    fn wire_round_trips(values in prop::collection::vec(-1e6f32..1e6, 0..256)) {
        let encoded = encode_params(&values);
        let decoded = decode_params(encoded).expect("well-formed");
        prop_assert_eq!(decoded, values);
    }

    /// Truncating an encoded payload anywhere makes decoding fail instead
    /// of returning corrupt parameters.
    #[test]
    fn truncated_wire_is_rejected(
        values in prop::collection::vec(-1.0f32..1.0, 1..64),
        cut in 0usize..64,
    ) {
        let encoded = encode_params(&values);
        prop_assume!(cut < encoded.len());
        let truncated = encoded.slice(0..cut.min(encoded.len() - 1));
        prop_assert!(decode_params(truncated).is_none());
    }
}
