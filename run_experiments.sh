#!/bin/bash
# Regenerates every table and figure of the paper (plus ablations and the
# async-FL extension) at smoke scale. Outputs land in results/<name>.txt.
# Pass "--scale paper" through by editing the run lines below; paper scale
# takes hours per experiment on one core.
set -u
cd "$(dirname "$0")"
BIN=./target/release
run() {
  out=$1; name=$2; shift 2
  echo "=== $out: $(date +%H:%M:%S) ==="
  "$BIN/$name" "$@" > "results/$out.txt" 2>&1
  echo "--- done $out ($?)"
}
mkdir -p results
run fig6_scalability   fig6_scalability
run fig8_link_speed    fig8_link_speed
run fig3_strategies    fig3_strategies
run table1_motivation  table1_motivation
run fig4_privacy       fig4_privacy
run fig5_agg_freq      fig5_agg_freq
run fig7_convergence   fig7_convergence
run table3_resources   table3_resources
run fig9_budgets       fig9_budgets
run fig10_c10          fig10_noniid_levels
run fig10_c100         fig10_noniid_levels --workload c100
run fig11_noniid       fig11_noniid_resources
run ext_async          ext_async
run ablation_reward    ablation_reward
run ablation_replay    ablation_replay
run ablation_policy    ablation_policy
run table2_accuracy    table2_accuracy
run figR_fault_tolerance figR_fault_tolerance
run figB_byzantine     figB_byzantine
run figC_compression   figC_compression
echo "ALL EXPERIMENTS DONE $(date +%H:%M:%S)"
